#pragma once

#include <vector>

#include "sat/types.h"

namespace step::sat {

/// Solution-reconstruction stack for the preprocessing tier.
///
/// Bounded variable elimination and equivalent-literal substitution remove
/// variables from the clause database; a model of the reduced formula must
/// be extended back to a model of the original one before it is handed to
/// the caller. The stack records, in elimination order:
///
///   * substitution entries  `v := rep`  — v was replaced by an equivalent
///     literal everywhere; its value is the representative's value;
///   * elimination entries — v was resolved away; the entry stores every
///     original clause in which v occurred (both polarities). Extension
///     tries v = false and flips to true iff some stored clause is left
///     unsatisfied (the resolvents added at elimination time guarantee the
///     flip never breaks a ¬v-clause).
///
/// extend() walks the stack **in reverse**: a variable referenced by a
/// stored clause can itself have been removed later, so its entry sits
/// higher on the stack and is processed first — every non-target literal
/// is assigned by the time its clause is evaluated.
class ReconstructionStack {
 public:
  void push_substitution(Var v, Lit rep) {
    entries_.push_back({v, rep, 0, 0});
  }

  /// Starts an elimination entry for `v`; follow with add_clause() calls.
  void begin_elimination(Var v) {
    entries_.push_back({v, kLitUndef, static_cast<std::uint32_t>(lits_.size()),
                        static_cast<std::uint32_t>(lits_.size())});
  }

  /// Appends one original clause of the entry opened by begin_elimination().
  void add_clause(std::span<const Lit> clause) {
    for (Lit l : clause) lits_.push_back(l);
    lits_.push_back(kLitUndef);  // clause separator
    entries_.back().end = static_cast<std::uint32_t>(lits_.size());
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Extends a model of the reduced formula over the removed variables.
  /// `model` is indexed by variable; removed variables may be kUndef on
  /// entry and are assigned on exit.
  void extend(std::vector<Lbool>& model) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->rep != kLitUndef) {  // substitution: copy the representative
        Lbool v = model[var(it->rep)];
        STEP_CHECK(v != Lbool::kUndef);
        model[it->v] = v ^ sign(it->rep);
        continue;
      }
      // Elimination: default false, flip iff a stored clause demands it.
      model[it->v] = Lbool::kFalse;
      for (std::uint32_t i = it->begin; i < it->end;) {
        bool satisfied = false;
        std::uint32_t j = i;
        for (; lits_[j] != kLitUndef; ++j) {
          const Lit l = lits_[j];
          const Lbool val = model[var(l)];
          STEP_CHECK(val != Lbool::kUndef);
          if ((val ^ sign(l)) == Lbool::kTrue) satisfied = true;
        }
        if (!satisfied) {
          model[it->v] = Lbool::kTrue;
          break;
        }
        i = j + 1;
      }
    }
  }

 private:
  struct Entry {
    Var v;
    Lit rep;  ///< kLitUndef for elimination entries
    std::uint32_t begin, end;  ///< clause window in lits_ (eliminations)
  };

  std::vector<Entry> entries_;
  std::vector<Lit> lits_;  ///< flattened clauses, kLitUndef-separated
};

}  // namespace step::sat
