#include "aig/simulate.h"

#include <algorithm>

#include "common/resource.h"

namespace step::aig {

namespace {

/// Sweeps all nodes once in id order (ids are topologically sorted).
std::vector<std::uint64_t> sweep(const Aig& a,
                                 const std::vector<std::uint64_t>& input_words) {
  STEP_CHECK(input_words.size() == a.num_inputs());
  std::vector<std::uint64_t> val(a.num_nodes(), 0);
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (a.is_input(n)) {
      val[n] = input_words[a.input_index(n)];
    } else {
      const Lit f0 = a.fanin0(n);
      const Lit f1 = a.fanin1(n);
      const std::uint64_t v0 =
          is_complemented(f0) ? ~val[node_of(f0)] : val[node_of(f0)];
      const std::uint64_t v1 =
          is_complemented(f1) ? ~val[node_of(f1)] : val[node_of(f1)];
      val[n] = v0 & v1;
    }
  }
  return val;
}

std::uint64_t edge_value(const std::vector<std::uint64_t>& val, Lit l) {
  return is_complemented(l) ? ~val[node_of(l)] : val[node_of(l)];
}

}  // namespace

std::vector<std::uint64_t> simulate(const Aig& a,
                                    const std::vector<std::uint64_t>& input_words) {
  const std::vector<std::uint64_t> val = sweep(a, input_words);
  std::vector<std::uint64_t> out(a.num_outputs());
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    out[i] = edge_value(val, a.output(i));
  }
  return out;
}

std::uint64_t simulate_cone(const Aig& a, Lit root,
                            const std::vector<std::uint64_t>& input_words) {
  const std::vector<std::uint64_t> val = sweep(a, input_words);
  return edge_value(val, root);
}

std::vector<std::uint64_t> simulate_nodes(
    const Aig& a, const std::vector<std::uint64_t>& input_words) {
  return sweep(a, input_words);
}

ConeSimulator::ConeSimulator(const Aig& a, Lit root, MemTracker* mem)
    : mem_(mem) {
  // Collect the cone's nodes. The visited set is a sorted id vector built
  // from an explicit DFS (re-sorted with dedup after collection) rather
  // than a num_nodes-sized bitmap, so a small window on a million-gate
  // netlist costs O(cone), not O(circuit).
  std::vector<std::uint32_t> nodes;
  {
    std::vector<std::uint32_t> stack{node_of(root)};
    std::vector<std::uint32_t> seen;  // sorted snapshot for lookups
    std::size_t unsorted = 0;
    auto contains = [&](std::uint32_t n) {
      const auto mid = seen.begin() + static_cast<std::ptrdiff_t>(unsorted);
      if (std::binary_search(seen.begin(), mid, n)) return true;
      return std::find(mid, seen.end(), n) != seen.end();
    };
    while (!stack.empty()) {
      const std::uint32_t n = stack.back();
      stack.pop_back();
      if (n == 0 || contains(n)) continue;
      seen.push_back(n);
      // Re-sort the snapshot once the unsorted tail grows past a small
      // bound: keeps membership checks ~O(log c) amortized.
      if (seen.size() - unsorted > 64) {
        std::sort(seen.begin(), seen.end());
        unsorted = seen.size();
      }
      if (a.is_and(n)) {
        stack.push_back(node_of(a.fanin0(n)));
        stack.push_back(node_of(a.fanin1(n)));
      }
    }
    std::sort(seen.begin(), seen.end());
    nodes = std::move(seen);
  }

  // Ascending node id = topological order. Assign local slots: constant 0,
  // support inputs next (ascending input index == ascending node id order
  // is NOT guaranteed, so sort support by input index afterwards), then
  // AND nodes.
  std::vector<std::uint32_t> and_nodes;
  std::vector<std::uint32_t> in_nodes;
  for (const std::uint32_t n : nodes) {
    if (a.is_and(n)) {
      and_nodes.push_back(n);
    } else {
      in_nodes.push_back(n);
    }
  }
  std::sort(in_nodes.begin(), in_nodes.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              return a.input_index(x) < a.input_index(y);
            });
  support_.reserve(in_nodes.size());
  for (const std::uint32_t n : in_nodes) {
    support_.push_back(static_cast<std::uint32_t>(a.input_index(n)));
  }
  num_ands_ = static_cast<std::uint32_t>(and_nodes.size());

  // Local slot of each cone node: binary search over the two sorted
  // arrays; the constant is slot 0.
  auto local_slot = [&](std::uint32_t n) -> Lit {
    if (n == 0) return 0;
    const auto ai = std::lower_bound(and_nodes.begin(), and_nodes.end(), n);
    if (ai != and_nodes.end() && *ai == n) {
      return static_cast<Lit>(1 + in_nodes.size() +
                              (ai - and_nodes.begin()));
    }
    for (std::size_t i = 0; i < in_nodes.size(); ++i) {
      if (in_nodes[i] == n) return static_cast<Lit>(1 + i);
    }
    STEP_CHECK(false && "fanin outside its own cone");
    return 0;
  };

  local_f0_.reserve(and_nodes.size());
  local_f1_.reserve(and_nodes.size());
  for (const std::uint32_t n : and_nodes) {
    const Lit f0 = a.fanin0(n);
    const Lit f1 = a.fanin1(n);
    local_f0_.push_back(mk_lit(local_slot(node_of(f0)), is_complemented(f0)));
    local_f1_.push_back(mk_lit(local_slot(node_of(f1)), is_complemented(f1)));
  }
  local_root_ =
      mk_lit(local_slot(node_of(root)), is_complemented(root));
  val_.assign(1 + in_nodes.size() + and_nodes.size(), 0);

  if (mem_ != nullptr) {
    charged_ = support_.capacity() * sizeof(std::uint32_t) +
               local_f0_.capacity() * sizeof(Lit) +
               local_f1_.capacity() * sizeof(Lit) +
               val_.capacity() * sizeof(std::uint64_t);
    mem_->charge(charged_);
  }
}

ConeSimulator::~ConeSimulator() {
  if (mem_ != nullptr) mem_->release(charged_);
}

std::uint64_t ConeSimulator::run(
    const std::vector<std::uint64_t>& support_words) {
  STEP_CHECK(support_words.size() == support_.size());
  val_[0] = 0;
  std::copy(support_words.begin(), support_words.end(), val_.begin() + 1);
  std::uint64_t* v = val_.data();
  const std::size_t base = 1 + support_.size();
  for (std::size_t k = 0; k < local_f0_.size(); ++k) {
    const Lit f0 = local_f0_[k];
    const Lit f1 = local_f1_[k];
    const std::uint64_t v0 = is_complemented(f0) ? ~v[f0 >> 1] : v[f0 >> 1];
    const std::uint64_t v1 = is_complemented(f1) ? ~v[f1 >> 1] : v[f1 >> 1];
    v[base + k] = v0 & v1;
  }
  const std::uint64_t r = v[local_root_ >> 1];
  return is_complemented(local_root_) ? ~r : r;
}

std::vector<std::uint64_t> truth_table(const Aig& a, Lit root,
                                       const std::vector<std::uint32_t>& support) {
  const std::size_t n = support.size();
  STEP_CHECK(n <= 20);
  const std::size_t rows = std::size_t{1} << n;
  const std::size_t words = tt_words(n);

  // The first six support variables follow the canonical word patterns;
  // the remaining ones alternate per word block.
  static constexpr std::uint64_t kPattern[6] = {
      0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
      0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL};

  // One cone-restricted simulator serves every word block: the cost per
  // block is O(cone), independent of how large the enclosing AIG is.
  ConeSimulator sim(a, root);
  // Map the caller's support positions (input indices, caller order) onto
  // the simulator's (ascending). Inputs the cone does not reach (the
  // caller may pass a superset) simulate as constant 0: they cannot
  // affect the root.
  const std::vector<std::uint32_t>& cone_sup = sim.support();
  std::vector<int> word_of(cone_sup.size(), -1);
  for (std::size_t j = 0; j < n; ++j) {
    const auto it =
        std::lower_bound(cone_sup.begin(), cone_sup.end(), support[j]);
    if (it != cone_sup.end() && *it == support[j]) {
      word_of[it - cone_sup.begin()] = static_cast<int>(j);
    }
  }

  std::vector<std::uint64_t> table(words, 0);
  std::vector<std::uint64_t> sup_words(cone_sup.size(), 0);
  for (std::size_t w = 0; w < words; ++w) {
    for (std::size_t i = 0; i < cone_sup.size(); ++i) {
      const int j = word_of[i];
      if (j < 0) continue;
      if (j < 6) {
        sup_words[i] = kPattern[j];
      } else {
        sup_words[i] = ((w >> (j - 6)) & 1U) ? ~0ULL : 0ULL;
      }
    }
    table[w] = sim.run(sup_words);
  }
  // Mask off unused rows for n < 6 so tables compare cleanly.
  if (n < 6) table[0] &= (rows == 64) ? ~0ULL : ((1ULL << rows) - 1);
  return table;
}

}  // namespace step::aig
