#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/timer.h"
#include "sat/clause.h"
#include "sat/heap.h"
#include "sat/proof.h"
#include "sat/reconstruction.h"
#include "sat/types.h"

namespace step::sat {

/// Restart policy of the search loop.
enum class RestartMode : std::uint8_t {
  kLuby,  ///< Luby sequence scaled by `restart_base` (the classic default)
  kEma,   ///< adaptive: fast/slow exponential moving averages of learnt LBD
};

/// Tuning knobs and feature switches. docs/SOLVER.md documents every field
/// and the trade-offs; the defaults are the modern configuration the
/// committed BENCH_sat.json A/B validates.
struct SolverOptions {
  double var_decay = 0.95;
  double clause_decay = 0.999;
  bool phase_saving = true;
  bool minimize_learnt = true;   ///< basic (non-recursive) minimization

  // ---- restarts ----
  /// Default Luby: the engines' workload is thousands of small
  /// assumption-driven incremental queries, where Luby measures ~10%
  /// fewer conflicts than EMA. Switch to kEma for hard single-shot
  /// instances (the BENCH_sat.json micro section shows it ~30% ahead on
  /// pigeonhole-style refutations).
  RestartMode restart_mode = RestartMode::kLuby;
  int restart_base = 100;        ///< Luby restart unit, in conflicts.
  /// EMA mode: restart when fast_lbd_ema > restart_margin * slow_lbd_ema.
  double restart_margin = 1.25;
  /// EMA mode: minimum conflicts between restarts (also the warm-up before
  /// the averages are trusted).
  int restart_min_interval = 50;
  /// EMA mode: postpone the restart when the trail is this much larger
  /// than its long-term average — the solver is probably closing in on a
  /// model ("blocking" restarts, Glucose-style). 0 disables blocking.
  double restart_block_margin = 1.4;
  /// Every `rephase_interval` conflicts, reset saved phases to the target
  /// phase (the assignment of the largest trail seen since the last
  /// rephase). 0 disables rephasing.
  int rephase_interval = 10000;

  // ---- learnt-clause database (LBD tiers) ----
  /// Learnts with LBD <= core_lbd_cut are kept forever.
  int core_lbd_cut = 3;
  /// Learnts with LBD in (core, tier2] survive while they keep appearing
  /// in conflict analysis; untouched ones are demoted to the local tier.
  int tier2_lbd_cut = 6;
  /// Conflicts between reduce_db() rounds (the local tier halves on
  /// activity each round, like the classic scheme).
  int reduce_interval = 2000;
  /// Scheduled rounds are skipped while the local tier is smaller than
  /// this — halving a tiny database just churns useful clauses.
  int reduce_min_local = 300;
  /// Floor for the local learnt budget before an extra reduce_db() fires
  /// (the effective limit also scales with the problem size).
  double max_learnts_floor = 4000.0;

  // ---- inter-solve inprocessing ----
  /// Run bounded inprocessing (satisfied-clause sweep, backward
  /// subsumption, self-subsuming resolution, clause vivification) between
  /// incremental solve() calls. Level-0-only and entailment-preserving, so
  /// it is safe under solve(assumptions). Forced off by proof_logging.
  bool inprocess = true;
  /// solve() calls between inprocessing rounds.
  int inprocess_interval = 2;
  /// Additionally require this many conflicts since the last round — the
  /// incremental engines issue thousands of near-trivial solve() calls,
  /// and a round must never cost more than the search it sped up.
  std::int64_t inprocess_min_conflicts = 2000;
  /// Clause-pair budget of one subsumption round.
  std::int64_t subsume_limit = 100000;
  /// Propagation budget of one vivification round.
  std::int64_t vivify_limit = 10000;
  /// Only clauses up to this many literals are vivified.
  int vivify_max_size = 16;

  // ---- preprocessing (runs inside the inprocessing rounds, plus once
  // ---- before the first search; see docs/SOLVER.md § Preprocessing) ----
  /// Bounded variable elimination (SatELite-style clause distribution).
  /// Eliminated variables are resolved away and their values recovered via
  /// the reconstruction stack; frozen variables are never touched.
  bool elim = true;
  /// SCC-based equivalent-literal detection over the binary implication
  /// graph with representative substitution. Frozen variables are never
  /// substituted away (but may serve as representatives).
  bool scc = true;
  /// Failed-literal probing with lazy hyper-binary resolution and bounded
  /// transitive reduction of the binary implication graph.
  bool probe = true;
  /// Elimination keeps a variable when it would add more than this many
  /// resolvents beyond the clauses it deletes (0 = never grow the DB).
  int elim_grow = 0;
  /// Variables occurring more often than this in *both* polarities are
  /// skipped by elimination (the resolvent cross-product explodes).
  int elim_occ_limit = 16;
  /// Resolution-literal budget of one elimination round.
  std::int64_t elim_budget = 400000;
  /// Propagation budget of one probing round (shared with the transitive-
  /// reduction walk).
  std::int64_t probe_budget = 30000;

  // ---- resource governance ----
  /// Per-solve conflict cap applied to *every* solve() of this solver
  /// (negative = unlimited). Callers that pass an explicit budget to
  /// solve_limited() get the smaller of the two. A capped stop returns
  /// kUnknown and bumps Stats::conflict_budget_stops so outcome
  /// classification (core/outcome.h) can tell it apart from a deadline.
  std::int64_t conflict_budget = -1;
  /// When set, the clause arena charges its capacity growth here (and
  /// refunds on destruction) — the per-cone account of the resource
  /// governor (common/resource.h). The tracker must outlive the solver.
  MemTracker* mem = nullptr;

  // ---- proofs ----
  /// Record the resolution proof. Implies that learnt clauses are never
  /// deleted (proof nodes must stay resolvable) and disables inprocessing,
  /// so enable only for the interpolation queries, which are per-cone and
  /// small.
  bool proof_logging = false;
  /// Record a clausal DRAT trace (additions + deletions) instead;
  /// compatible with the tiered database and with inprocessing. Check it
  /// with check_drat() against the original clauses.
  bool drat_logging = false;
};

/// Conflict-driven clause-learning SAT solver, MiniSat lineage with the
/// modern hot path: blocking-literal watcher lists plus a dedicated
/// binary-clause implication list, first-UIP learning with LBD-tiered
/// learnt retention (core/tier2/local), VSIDS decisions, phase saving with
/// target-phase rephasing, Luby or EMA-adaptive restarts, bounded
/// inter-solve inprocessing (subsumption / self-subsuming resolution /
/// vivification), incremental solving under assumptions with
/// final-conflict cores, and optional resolution- or DRAT-proof logging.
///
/// Typical use:
///   Solver s;
///   Var a = s.new_var(), b = s.new_var();
///   s.add_clause({mk_lit(a), mk_lit(b)});
///   Result r = s.solve();
///   if (r == Result::kSat) ... s.model_value(mk_lit(a)) ...
class Solver {
 public:
  explicit Solver(SolverOptions opts = {});

  // ----- problem construction --------------------------------------------
  Var new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. `proof_tag` labels the proof leaf (interpolation uses
  /// 0 = A-part, 1 = B-part; irrelevant when proof logging is off).
  /// Returns false iff the solver is already in an unsatisfiable state.
  bool add_clause(std::span<const Lit> lits, int proof_tag = 0);
  bool add_clause(std::initializer_list<Lit> lits, int proof_tag = 0) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()),
                      proof_tag);
  }

  /// False once unsatisfiability has been established at level 0.
  bool is_ok() const { return ok_; }

  // ----- solving -----------------------------------------------------------
  Result solve() { return solve(std::span<const Lit>{}); }
  Result solve(std::span<const Lit> assumptions);
  /// Budgeted solve: stops with kUnknown when the conflict budget
  /// (negative = unlimited) or the deadline runs out.
  ///
  /// Interrupt contract: a kUnknown return leaves the solver fully
  /// reusable — the next solve() on the same instance behaves as if the
  /// interrupted call never happened. Specifically: the trail is unwound
  /// to level 0 before returning; assumptions are frozen before any
  /// simplification, so an interrupted call never eliminates a variable a
  /// later call may assume; and inprocessing runs only at solve entry
  /// (never polling the deadline mid-rewrite), with every phase restoring
  /// watch/trail consistency before it returns. This is what lets a
  /// portfolio racer cancel mid-solve without poisoning persistent
  /// incremental state (see tests/solver_fuzz_test.cpp, cancel fuzz).
  Result solve_limited(std::span<const Lit> assumptions,
                       std::int64_t conflict_budget = -1,
                       const Deadline* deadline = nullptr);

  // ----- results ------------------------------------------------------------
  /// Model access after kSat.
  Lbool model_value(Lit l) const {
    Lbool v = model_[var(l)];
    return v ^ sign(l);
  }
  Lbool model_value(Var v) const { return model_[v]; }

  /// After kUnsat under assumptions: a subset of the assumptions whose
  /// conjunction is already inconsistent with the clauses (the "core").
  /// Literals appear in their assumed polarity.
  const LitVec& conflict_core() const { return conflict_core_; }

  /// Resolution proof (only populated with proof_logging = true).
  const Proof& proof() const { return proof_; }

  /// DRAT trace (only populated with drat_logging = true).
  const DratTrace& drat() const { return drat_; }

  // ----- heuristics / hints ----------------------------------------------
  /// Preferred phase when the variable is picked as a decision.
  void set_polarity_hint(Var v, bool value) { polarity_[v] = value ? 1 : 0; }

  /// Adds `factor` × the current VSIDS increment to v's activity, steering
  /// upcoming decisions toward v (e.g. deciding problem variables before
  /// encoder auxiliaries). The preference decays like any ordinary bump.
  void boost_var_activity(Var v, double factor = 1.0) { bump_var(v, factor); }

  // ----- preprocessing safety ---------------------------------------------
  /// Marks v untouchable by the preprocessing tier: never eliminated and
  /// never substituted away. Freeze every variable that can ever appear in
  /// an assumption, an interpolation partition label, or an incremental-
  /// counter output. Assumption variables of each solve() are additionally
  /// frozen automatically before any preprocessing runs, so one-shot
  /// callers need no explicit calls; freeze up front whatever becomes an
  /// assumption only in *later* solves.
  void set_frozen(Var v) {
    frozen_[v] = 1;
    if (debug_models_) debug_trace_.push_back("f " + std::to_string(v));
  }
  bool is_frozen(Var v) const { return frozen_[v] != 0; }
  /// True once v has been resolved away by bounded variable elimination.
  bool is_eliminated(Var v) const { return var_state_[v] == 1; }
  /// True once v has been replaced by an equivalent representative literal.
  bool is_substituted(Var v) const { return var_state_[v] == 2; }

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t binary_propagations = 0;  ///< subset via the binary list
    std::uint64_t restarts = 0;
    std::uint64_t blocked_restarts = 0;  ///< EMA restarts postponed on trail
    std::uint64_t rephases = 0;
    std::uint64_t learnt = 0;
    std::uint64_t db_reductions = 0;
    // Current tier occupancy of the learnt database.
    std::uint64_t core_learnts = 0;
    std::uint64_t tier2_learnts = 0;
    std::uint64_t local_learnts = 0;
    // Inprocessing totals.
    std::uint64_t inprocess_rounds = 0;
    std::uint64_t subsumed_clauses = 0;
    std::uint64_t strengthened_clauses = 0;
    std::uint64_t vivified_clauses = 0;
    std::uint64_t removed_lits = 0;  ///< via strengthening + vivification
    // Preprocessing totals (BVE / equivalent literals / probing).
    std::uint64_t eliminated_vars = 0;
    std::uint64_t substituted_lits = 0;  ///< literal occurrences rewritten
    std::uint64_t failed_literals = 0;
    std::uint64_t hyper_binaries = 0;
    std::uint64_t transitive_reductions = 0;  ///< redundant binaries deleted
    // Budgeted-stop causes: solve() calls that returned kUnknown because
    // the conflict cap ran out vs. because the deadline (wall budget,
    // memory trip, injected fault — see Deadline::Trip) fired.
    std::uint64_t conflict_budget_stops = 0;
    std::uint64_t deadline_stops = 0;

    Stats& operator+=(const Stats& o);
  };
  const Stats& stats() const { return stats_; }

 private:
  // The preprocessing passes live in their own translation units
  // (elimination.cpp, scc.cpp, probing.cpp) but operate directly on the
  // solver's clause database and trail.
  friend class Eliminator;
  friend class EquivalenceReducer;
  friend class Prober;

  struct Watcher {
    CRef cref;
    Lit blocker;
  };
  /// Binary clauses live in their own implication list: propagating p
  /// scans {other, cref} pairs meaning "clause (~p ∨ other)". No arena
  /// access on the hot path; cref backs reasons and proof ids.
  struct BinWatcher {
    Lit other;
    CRef cref;
  };

  // Internal machinery.
  Lbool value(Lit l) const { return assigns_[var(l)] ^ sign(l); }
  Lbool value(Var v) const { return assigns_[v]; }
  int level(Var v) const { return level_[v]; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  void attach_clause(CRef cr);
  void detach_clause(CRef cr);
  void enqueue(Lit p, CRef from);
  CRef propagate();
  void cancel_until(int lvl);
  Lit pick_branch_lit();
  void new_decision_level() {
    trail_lim_.push_back(static_cast<int>(trail_.size()));
  }

  void analyze(CRef confl, LitVec& out_learnt, int& out_btlevel,
               ProofId& out_start, std::vector<ProofStep>& out_steps,
               LitVec& dropped_level0);
  void analyze_final(Lit p, LitVec& out_core);
  bool lit_redundant(Lit l, std::vector<ProofStep>& steps, LitVec& dropped0,
                     LitVec& to_clear);

  Result search(std::int64_t nof_conflicts, const Deadline* deadline);

  void bump_var(Var v, double factor = 1.0);
  void decay_var_activity() { var_inc_ /= opts_.var_decay; }
  void bump_clause(Clause& c);
  void decay_clause_activity() { cla_inc_ /= opts_.clause_decay; }

  // Learnt database (LBD tiers).
  int compute_lbd(std::span<const Lit> lits);
  void on_learnt_antecedent(Clause& c);
  void note_tier(ClauseTier t, int delta);
  void remove_learnt(CRef cr);
  void demote_unused_tier2();
  void reduce_db();

  // Restarts / rephasing.
  void update_search_emas(int lbd);
  bool ema_restart_due(int conflicts_since_restart);
  void maybe_update_target_phase();
  void rephase();

  // Inter-solve inprocessing + preprocessing.
  void inprocess();
  void compact_clause_lists();
  void rebuild_watches();
  bool shrink_clause(CRef cr, const LitVec& new_lits, LitVec& pending_units);
  void mark_removed(CRef cr, bool learnt_list);
  std::size_t subsume_round(LitVec& pending_units);
  std::size_t vivify_round(LitVec& pending_units);
  bool settle_units(const LitVec& pending_units);

  /// Proof id justifying the level-0 assignment of v.
  ProofId level0_justification(Var v) const;
  /// Removes all literals of `lits` that are false at level 0, appending
  /// the corresponding resolution steps. Requires proof logging.
  void resolve_level0(LitVec& lits, std::vector<ProofStep>& steps);

  // Configuration.
  SolverOptions opts_;

  // Clause database.
  ClauseArena arena_;
  std::vector<CRef> clauses_;  ///< problem clauses
  std::vector<CRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;       ///< indexed by literal
  std::vector<std::vector<BinWatcher>> bin_watches_;  ///< indexed by literal

  // Assignment.
  std::vector<Lbool> assigns_;
  std::vector<int> level_;
  std::vector<CRef> reason_;
  LitVec trail_;
  std::vector<int> trail_lim_;
  LitVec assumptions_;
  int qhead_ = 0;
  bool ok_ = true;

  // Preprocessing state.
  std::vector<char> frozen_;     ///< never eliminated / substituted
  std::vector<char> var_state_;  ///< 0 active, 1 eliminated, 2 substituted
  ReconstructionStack reconstruction_;
  // STEP_DEBUG_MODELS=1: audit every SAT answer against a verbatim copy of
  // all clauses ever added, catching reconstruction bugs at the boundary.
  bool debug_models_ = false;
  std::vector<LitVec> debug_clauses_;
  // Interaction trace for replaying an audit failure: "v n", "f v",
  // "c <lits>", "s <assumptions>" lines.
  std::vector<std::string> debug_trace_;

  // Decision heuristics.
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  VarOrderHeap order_heap_{activity_};
  std::vector<char> polarity_;
  std::vector<char> target_phase_;
  std::size_t best_trail_size_ = 0;

  // Learning temporaries.
  std::vector<char> seen_;
  std::vector<char> present_;  ///< literals currently in the learnt clause
  std::vector<char> seen2_;    ///< marks for level-0 resolution chains
  std::vector<int> level_stamp_;  ///< LBD computation scratch, per level
  int stamp_counter_ = 0;

  // Restart state (EMA mode).
  double lbd_ema_fast_ = 0.0;
  double lbd_ema_slow_ = 0.0;
  double trail_ema_ = 0.0;
  bool emas_primed_ = false;
  std::uint64_t restart_hold_until_ = 0;  ///< conflicts stamp for blocking
  std::uint64_t next_rephase_ = 0;

  // Results.
  std::vector<Lbool> model_;
  LitVec conflict_core_;

  // Proofs.
  Proof proof_;
  DratTrace drat_;
  std::vector<ProofId> level0_unit_id_;  ///< per var; for reason-less units

  // Learnt DB management.
  double max_learnts_ = 0.0;
  std::uint64_t next_reduce_ = 0;
  std::uint64_t solve_calls_ = 0;
  std::uint64_t last_inprocess_solve_ = 0;
  std::uint64_t last_inprocess_conflicts_ = 0;
  // Preprocessing-tier scheduling: the tier re-runs only after the problem
  // database grew substantially since its last run (see inprocess()).
  std::uint64_t clauses_added_since_preprocess_ = 0;
  std::size_t last_preprocess_clauses_ = 0;

  Stats stats_;
};

}  // namespace step::sat
