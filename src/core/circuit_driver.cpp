#include "core/circuit_driver.h"

#include <algorithm>

namespace step::core {

int CircuitRunResult::num_decomposed() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(), [](const PoOutcome& p) {
        return p.status == DecomposeStatus::kDecomposed;
      }));
}

int CircuitRunResult::num_proven_optimal() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(), [](const PoOutcome& p) {
        return p.status == DecomposeStatus::kDecomposed && p.proven_optimal;
      }));
}

int CircuitRunResult::max_support() const {
  int m = 0;
  for (const PoOutcome& p : pos) m = std::max(m, p.support);
  return m;
}

CircuitRunResult run_circuit(const aig::Aig& circuit, const std::string& name,
                             const DecomposeOptions& opts,
                             double circuit_budget_s) {
  CircuitRunResult result;
  result.circuit = name;
  result.engine = opts.engine;
  result.op = opts.op;

  Timer total;
  Deadline circuit_deadline(circuit_budget_s);

  for (std::uint32_t po = 0; po < circuit.num_outputs(); ++po) {
    const Cone cone = extract_po_cone(circuit, po);
    if (cone.n() < 2) continue;  // constants and wires are not decomposable

    PoOutcome outcome;
    outcome.po_index = static_cast<int>(po);
    outcome.support = cone.n();

    if (circuit_deadline.expired()) {
      result.hit_circuit_budget = true;
      outcome.status = DecomposeStatus::kUnknown;
      result.pos.push_back(outcome);
      continue;
    }

    // Respect both the per-PO budget and the remaining circuit budget.
    DecomposeOptions po_opts = opts;
    po_opts.po_budget_s =
        std::min(opts.po_budget_s, circuit_deadline.remaining_s());

    const DecomposeResult r = BiDecomposer(po_opts).decompose(cone);
    outcome.status = r.status;
    outcome.metrics = r.metrics;
    outcome.proven_optimal = r.proven_optimal;
    outcome.cpu_s = r.cpu_s;
    result.pos.push_back(outcome);
  }
  result.total_cpu_s = total.elapsed_s();
  return result;
}

QualityComparison compare_quality(const CircuitRunResult& base,
                                  const CircuitRunResult& challenger,
                                  MetricKind kind) {
  QualityComparison cmp;
  STEP_CHECK(base.pos.size() == challenger.pos.size());
  for (std::size_t i = 0; i < base.pos.size(); ++i) {
    const PoOutcome& b = base.pos[i];
    const PoOutcome& c = challenger.pos[i];
    STEP_CHECK(b.po_index == c.po_index);
    if (b.status != DecomposeStatus::kDecomposed ||
        c.status != DecomposeStatus::kDecomposed) {
      continue;
    }
    ++cmp.considered;
    const int bc = metric_cost(b.metrics, kind);
    const int cc = metric_cost(c.metrics, kind);
    if (cc < bc) {
      ++cmp.challenger_better;
    } else if (cc == bc) {
      ++cmp.equal;
    } else {
      ++cmp.challenger_worse;
    }
  }
  return cmp;
}

}  // namespace step::core
