#pragma once

#include <optional>

#include "core/bidec_types.h"
#include "core/care.h"

namespace step::core {

/// The decomposed sub-functions, hosted in one AIG whose inputs mirror the
/// cone's inputs (same order/names):
///   fa       — fA(XA, XC): structurally supported only by XA ∪ XC
///   fb       — fB(XB, XC): structurally supported only by XB ∪ XC
///   combined — fa <OP> fb (the reconstruction of f)
/// The AIG registers these as outputs 0, 1, 2 for convenient IO.
struct ExtractedFunctions {
  aig::Aig aig;
  aig::Lit fa = aig::kLitFalse;
  aig::Lit fb = aig::kLitFalse;
  aig::Lit combined = aig::kLitFalse;
};

/// Computes fA and fB for a *valid* partition (callers establish validity
/// first; an invalid partition trips a STEP_CHECK via the interpolation
/// engine's UNSAT requirement).
///
/// OR: two sequential Craig interpolation queries (Section III.B /
/// Lee-Jiang-Hung):
///   fA = ITP( f(X) ∧ ¬f(XA',XB,XC) ,  ¬f(XA,XB',XC) )     over XA ∪ XC
///   fB = ITP( f(X) ∧ ¬fA(XA,XC)    ,  ¬f(XA',XB,XC) )     over XB ∪ XC
/// AND: duality — OR-extraction of ¬f, both results complemented.
/// XOR: cofactoring — fA = f|XB←0,  fB = f|XA←0 ⊕ f|XA←0,XB←0.
///
/// A non-trivial `care` (partition validated on the care set only) is
/// conjoined onto every cone copy of the interpolation queries, which
/// keeps them refutable and yields fA/fB correct *on the care set*:
/// fa <OP> fb ≡ f on every care minterm, free elsewhere. XOR partitions
/// are exact by construction, so cofactoring needs no care handling.
ExtractedFunctions extract_functions(const Cone& cone, GateOp op,
                                     const Partition& p,
                                     const CareSet* care = nullptr);

/// SAT check that f ≡ fa <OP> fb (miter unsatisfiability), restricted to
/// the care minterms when `care` is non-trivial.
bool verify_decomposition(const Cone& cone, const ExtractedFunctions& fns,
                          const CareSet* care = nullptr);

/// SAT miter over shared inputs: true iff two cones with the same input
/// count (inputs identified positionally) compute the same function.
/// Shared by decomposition verification and the cache's hit confirmation.
bool cones_equivalent(const Cone& a, const Cone& b);

}  // namespace step::core
