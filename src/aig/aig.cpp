#include "aig/aig.h"

#include <algorithm>

namespace step::aig {

Lit Aig::add_input(std::string name) {
  const std::uint32_t node = num_nodes();
  nodes_.push_back({kLitInvalid, kLitInvalid});
  input_index_.push_back(static_cast<int>(inputs_.size()));
  inputs_.push_back(node);
  if (name.empty()) name = "x" + std::to_string(inputs_.size() - 1);
  input_names_.push_back(std::move(name));
  return mk_lit(node);
}

std::uint32_t Aig::add_output(Lit driver, std::string name) {
  STEP_CHECK(node_of(driver) < num_nodes());
  const std::uint32_t idx = num_outputs();
  outputs_.push_back(driver);
  if (name.empty()) name = "y" + std::to_string(idx);
  output_names_.push_back(std::move(name));
  return idx;
}

Lit Aig::land(Lit a, Lit b) {
  STEP_CHECK(node_of(a) < num_nodes() && node_of(b) < num_nodes());
  // Constant folding and trivial cases.
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lnot(b)) return kLitFalse;

  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  auto it = strash_.find(key);
  if (it != strash_.end()) return mk_lit(it->second);

  const std::uint32_t node = num_nodes();
  nodes_.push_back({a, b});
  input_index_.push_back(-1);
  strash_.emplace(key, node);
  return mk_lit(node);
}

Lit Aig::land_many(const std::vector<Lit>& ls) {
  // Balanced tree keeps depth logarithmic.
  if (ls.empty()) return kLitTrue;
  std::vector<Lit> cur = ls;
  while (cur.size() > 1) {
    std::vector<Lit> next;
    next.reserve((cur.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
      next.push_back(land(cur[i], cur[i + 1]));
    }
    if (cur.size() % 2 != 0) next.push_back(cur.back());
    cur = std::move(next);
  }
  return cur[0];
}

Lit Aig::lor_many(const std::vector<Lit>& ls) {
  std::vector<Lit> neg(ls.size());
  std::transform(ls.begin(), ls.end(), neg.begin(), lnot);
  return lnot(land_many(neg));
}

Lit Aig::lxor_many(const std::vector<Lit>& ls) {
  Lit acc = kLitFalse;
  for (Lit l : ls) acc = lxor(acc, l);
  return acc;
}

std::uint32_t Aig::cone_size(Lit root) const {
  std::vector<char> visited(num_nodes(), 0);
  std::vector<std::uint32_t> stack{node_of(root)};
  std::uint32_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (visited[n]) continue;
    visited[n] = 1;
    if (!is_and(n)) continue;
    ++count;
    stack.push_back(node_of(nodes_[n].f0));
    stack.push_back(node_of(nodes_[n].f1));
  }
  return count;
}

}  // namespace step::aig
