// Quickstart: decompose one Boolean function with the QBF-based engine.
//
// Builds f(s, x, y) = s ? x : y (a 2:1 mux), asks STEP-QD for an
// OR bi-decomposition with optimum disjointness, and prints the partition,
// the metrics, and the extracted sub-functions as BLIF.
//
//   $ ./quickstart
//
// Expected outcome: the select input lands in the shared set XC (a mux
// cannot be OR-decomposed without sharing its select), the data inputs
// split into XA/XB, and f == fA OR fB is verified by SAT.

#include <cstdio>

#include "core/decomposer.h"
#include "io/blif_writer.h"

int main() {
  using namespace step;

  // 1. Build the function as an AIG cone (inputs == support).
  core::Cone cone;
  const aig::Lit s = cone.aig.add_input("s");
  const aig::Lit x = cone.aig.add_input("x");
  const aig::Lit y = cone.aig.add_input("y");
  cone.root = cone.aig.lmux(s, x, y);

  // 2. Configure the decomposer: OR gate, QBF model targeting optimum
  //    disjointness (STEP-QD), bootstrap via STEP-MG as in the paper.
  core::DecomposeOptions opts;
  opts.op = core::GateOp::kOr;
  opts.engine = core::Engine::kQbfDisjoint;

  // 3. Decompose.
  const core::DecomposeResult r = core::BiDecomposer(opts).decompose(cone);
  if (r.status != core::DecomposeStatus::kDecomposed) {
    std::printf("function is not OR bi-decomposable\n");
    return 1;
  }

  // 4. Inspect the result.
  std::printf("partition (per input s,x,y): %s\n", r.partition.to_string().c_str());
  std::printf("disjointness eD = %.3f  (|XC| = %d of %d)\n",
              r.metrics.disjointness(), r.metrics.shared, r.metrics.n);
  std::printf("balancedness eB = %.3f\n", r.metrics.balancedness());
  std::printf("optimum proven: %s\n", r.proven_optimal ? "yes" : "no");
  std::printf("f == fA OR fB verified by SAT: %s\n", r.verified ? "yes" : "no");

  // 5. The decomposed network: outputs fa, fb and the recombination.
  std::printf("\n%s", io::write_blif(r.functions->aig, "mux_decomposed").c_str());
  return 0;
}
