// DRAT round-trip: solve with the modern configuration — tiered deletion
// and inprocessing (subsumption, strengthening, vivification) forced on —
// while recording the clausal trace, then replay the trace through the
// in-repo forward RUP checker (sat/proof.h) against the original formula.
// UNSAT runs must end in a verified empty clause *including* every
// deletion line; SAT runs must still be valid derivation logs.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sat/dimacs.h"
#include "sat/proof.h"
#include "sat/solver.h"

namespace step::sat {
namespace {

/// Configuration that exercises every trace-emitting mechanism quickly.
SolverOptions drat_config() {
  SolverOptions o;
  o.drat_logging = true;
  o.restart_mode = RestartMode::kEma;
  o.restart_min_interval = 5;
  o.reduce_interval = 50;      // tiered deletions mid-search
  o.reduce_min_local = 0;      // …even from a small local tier
  o.max_learnts_floor = 16.0;  // …and via the size backstop
  o.inprocess = true;
  o.inprocess_interval = 1;    // inprocess before every solve
  o.inprocess_min_conflicts = 0;
  return o;
}

struct Instance {
  int num_vars = 0;
  std::vector<LitVec> clauses;
};

Instance pigeonhole(int holes) {
  Instance inst;
  inst.num_vars = (holes + 1) * holes;
  auto p = [&](int pigeon, int hole) {
    return mk_lit(static_cast<Var>(pigeon * holes + hole));
  };
  for (int i = 0; i <= holes; ++i) {
    LitVec c;
    for (int h = 0; h < holes; ++h) c.push_back(p(i, h));
    inst.clauses.push_back(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i <= holes; ++i) {
      for (int j = i + 1; j <= holes; ++j) {
        inst.clauses.push_back({~p(i, h), ~p(j, h)});
      }
    }
  }
  return inst;
}

/// Solves in two incremental episodes (half the clauses, solve, rest,
/// solve) so an inprocessing round runs mid-way with real deletions.
Result solve_logged(const Instance& inst, Solver& s) {
  // The second episode re-adds clauses over every variable, so none may
  // be eliminated or substituted by the first episode's preprocessing.
  for (int i = 0; i < inst.num_vars; ++i) s.set_frozen(s.new_var());
  const std::size_t half = inst.clauses.size() / 2;
  bool alive = true;
  for (std::size_t c = 0; c < half && alive; ++c) {
    alive = s.add_clause(inst.clauses[c]);
  }
  if (alive) s.solve();
  for (std::size_t c = half; c < inst.clauses.size() && s.is_ok(); ++c) {
    s.add_clause(inst.clauses[c]);
  }
  return s.solve();
}

void expect_checked_unsat(const Instance& inst) {
  Solver s(drat_config());
  ASSERT_EQ(solve_logged(inst, s), Result::kUnsat);
  ASSERT_FALSE(s.drat().empty());
  const DratCheckResult r = check_drat(inst.num_vars, inst.clauses, s.drat());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.proved_unsat) << "no empty clause derived";
}

TEST(Drat, PigeonholeWithInprocessingAndDeletionChecks) {
  for (int holes = 3; holes <= 5; ++holes) {
    SCOPED_TRACE(holes);
    expect_checked_unsat(pigeonhole(holes));
  }
}

TEST(Drat, TraceContainsDeletionLines) {
  // The point of DRAT over plain RUP logs: deletions are recorded, and
  // the checker honours them. Pigeonhole-5 reliably triggers both the
  // tiered reduce_db and the inprocessing sweep.
  Solver s(drat_config());
  ASSERT_EQ(solve_logged(pigeonhole(5), s), Result::kUnsat);
  bool has_delete = false;
  for (const DratLine& l : s.drat().lines()) has_delete |= l.is_delete;
  EXPECT_TRUE(has_delete);
  EXPECT_GT(s.stats().inprocess_rounds, 0u);
  EXPECT_NE(s.drat().to_text().find("d "), std::string::npos);
}

TEST(Drat, RandomUnsatInstances) {
  Rng rng(99);
  int checked = 0;
  for (int round = 0; round < 40 && checked < 8; ++round) {
    Instance inst;
    inst.num_vars = rng.next_int(6, 10);
    // Over-constrained random 3-CNF: mostly UNSAT at ratio 6.
    for (int c = 0; c < inst.num_vars * 6; ++c) {
      LitVec cl;
      for (int j = 0; j < 3; ++j) {
        cl.push_back(
            mk_lit(rng.next_int(0, inst.num_vars - 1), rng.next_bool()));
      }
      inst.clauses.push_back(cl);
    }
    Solver probe;  // defaults; answer only
    for (int i = 0; i < inst.num_vars; ++i) probe.new_var();
    for (const LitVec& c : inst.clauses) probe.add_clause(c);
    if (probe.solve() != Result::kUnsat) continue;
    SCOPED_TRACE(round);
    expect_checked_unsat(inst);
    ++checked;
  }
  EXPECT_GE(checked, 3) << "generator produced too few UNSAT instances";
}

TEST(Drat, SatRunsProduceValidDerivationLogs) {
  // A satisfiable instance: every addition (learnts, strengthenings,
  // vivifications) must still be RUP; no empty clause appears.
  Rng rng(7);
  Instance inst;
  inst.num_vars = 12;
  for (int c = 0; c < 30; ++c) {
    LitVec cl;
    for (int j = 0; j < 3; ++j) {
      cl.push_back(mk_lit(rng.next_int(0, inst.num_vars - 1), rng.next_bool()));
    }
    inst.clauses.push_back(cl);
  }
  Solver s(drat_config());
  const Result res = solve_logged(inst, s);
  ASSERT_EQ(res, Result::kSat);
  const DratCheckResult r = check_drat(inst.num_vars, inst.clauses, s.drat());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.proved_unsat);
}

/// Single-episode solve with nothing frozen: the forced first-solve
/// preprocessing round gets free rein over the whole variable set.
Result solve_logged_one_shot(const Instance& inst, Solver& s) {
  for (int i = 0; i < inst.num_vars; ++i) s.new_var();
  for (const LitVec& c : inst.clauses) {
    if (!s.add_clause(c)) break;
  }
  return s.solve();
}

TEST(Drat, EliminationLinesRoundTrip) {
  // Pigeonhole variables have one long positive and several binary
  // negative occurrences — prime bounded-variable-elimination fodder.
  // The resolvent additions and parent deletions must check in order.
  const Instance inst = pigeonhole(4);
  Solver s(drat_config());
  ASSERT_EQ(solve_logged_one_shot(inst, s), Result::kUnsat);
  EXPECT_GT(s.stats().eliminated_vars, 0u);
  const DratCheckResult r = check_drat(inst.num_vars, inst.clauses, s.drat());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.proved_unsat);
}

TEST(Drat, SubstitutionLinesRoundTrip) {
  // a ⇔ b via a binary implication cycle. Equivalence reduction rewrites
  // every other occurrence of b to a; the rewritten clauses are logged as
  // additions before the originals are deleted, and must replay that way.
  Instance inst;
  inst.num_vars = 4;
  const Lit a = mk_lit(0), b = mk_lit(1), c = mk_lit(2), d = mk_lit(3);
  inst.clauses = {{~a, b}, {a, ~b},        // a ⇔ b (binary 2-cycle)
                  {a, c, d},  {~b, c, ~d},  // ternaries over b get their
                  {b, ~c, d}};              // occurrences rewritten to a
  Solver s(drat_config());
  ASSERT_EQ(solve_logged_one_shot(inst, s), Result::kSat);
  EXPECT_GT(s.stats().substituted_lits, 0u);
  const DratCheckResult r = check_drat(inst.num_vars, inst.clauses, s.drat());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.proved_unsat);
}

TEST(Drat, HyperBinaryLinesRoundTrip) {
  // Probing p propagates a and b through binaries and then q through the
  // ternary reason (¬a ∨ ¬b ∨ q), yielding the hyper-binary (¬p ∨ q).
  // The two binary antecedents are distinct, so no self-subsumption can
  // shorten the ternary first. The instance stays satisfiable, so the
  // trace must be a valid derivation log.
  Instance inst;
  inst.num_vars = 4;
  const Lit p = mk_lit(0), a = mk_lit(1), b = mk_lit(2), q = mk_lit(3);
  inst.clauses = {{~p, a}, {~p, b}, {~a, ~b, q}};
  Solver s(drat_config());
  ASSERT_EQ(solve_logged_one_shot(inst, s), Result::kSat);
  EXPECT_GT(s.stats().hyper_binaries, 0u);
  const DratCheckResult r = check_drat(inst.num_vars, inst.clauses, s.drat());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.proved_unsat);
}

TEST(Drat, PreprocessedRandomInstancesRoundTrip) {
  // Random soak with nothing frozen: whatever mix of elimination,
  // substitution, probing, and search a round happens to trigger, the
  // combined trace must replay.
  Rng rng(0xd2a7);
  int unsat_checked = 0, sat_checked = 0;
  std::uint64_t eliminated = 0;
  for (int round = 0; round < 30; ++round) {
    Instance inst;
    inst.num_vars = rng.next_int(8, 14);
    for (int c = 0; c < inst.num_vars * 4; ++c) {
      LitVec cl;
      const int width = rng.next_int(2, 3);
      for (int j = 0; j < width; ++j) {
        cl.push_back(
            mk_lit(rng.next_int(0, inst.num_vars - 1), rng.next_bool()));
      }
      inst.clauses.push_back(cl);
    }
    SCOPED_TRACE(round);
    Solver s(drat_config());
    const Result res = solve_logged_one_shot(inst, s);
    eliminated += s.stats().eliminated_vars;
    const DratCheckResult r = check_drat(inst.num_vars, inst.clauses, s.drat());
    ASSERT_TRUE(r.ok) << r.error;
    if (res == Result::kUnsat) {
      ASSERT_TRUE(r.proved_unsat);
      ++unsat_checked;
    } else {
      ASSERT_FALSE(r.proved_unsat);
      ++sat_checked;
    }
  }
  EXPECT_GT(unsat_checked, 0);
  EXPECT_GT(sat_checked, 0);
  EXPECT_GT(eliminated, 0u) << "soak never exercised elimination";
}

TEST(Drat, CheckerRejectsBogusTraces) {
  // Sanity of the checker itself: a non-implied addition and a deletion
  // of an absent clause must both be rejected.
  Instance inst;
  inst.num_vars = 3;
  inst.clauses = {{mk_lit(0), mk_lit(1)}};
  {
    DratTrace t;
    const LitVec bogus = {mk_lit(2)};
    t.add(bogus);
    const DratCheckResult r = check_drat(inst.num_vars, inst.clauses, t);
    EXPECT_FALSE(r.ok);
  }
  {
    DratTrace t;
    const LitVec absent = {mk_lit(0), mk_lit(2)};
    t.del(absent);
    const DratCheckResult r = check_drat(inst.num_vars, inst.clauses, t);
    EXPECT_FALSE(r.ok);
  }
}

TEST(Drat, DimacsRoundTripOfCheckedFormula) {
  // The DRAT artifacts are exchanged as DIMACS + trace text; make sure a
  // formula survives the write/parse cycle and still checks.
  const Instance inst = pigeonhole(4);
  DimacsFormula f;
  f.num_vars = inst.num_vars;
  f.clauses = inst.clauses;
  const DimacsFormula parsed = parse_dimacs(write_dimacs(f));
  ASSERT_EQ(parsed.num_vars, inst.num_vars);
  ASSERT_EQ(parsed.clauses.size(), inst.clauses.size());
  Solver s(drat_config());
  Instance round;
  round.num_vars = parsed.num_vars;
  round.clauses = parsed.clauses;
  ASSERT_EQ(solve_logged(round, s), Result::kUnsat);
  const DratCheckResult r = check_drat(round.num_vars, round.clauses, s.drat());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.proved_unsat);
}

}  // namespace
}  // namespace step::sat
