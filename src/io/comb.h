#pragma once

#include "aig/aig.h"
#include "io/network.h"

namespace step::io {

/// ABC-`comb` equivalent: elaborates a (possibly sequential) network into a
/// combinational AIG by cutting latches — latch outputs become primary
/// inputs, latch inputs (next-state functions) become primary outputs.
/// This matches how the paper prepares ISCAS'89/ITC'99 circuits.
aig::Aig to_combinational(const Network& net);

/// Number of primary inputs the combinational view will have.
std::size_t comb_num_inputs(const Network& net);

/// Number of primary outputs the combinational view will have.
std::size_t comb_num_outputs(const Network& net);

}  // namespace step::io
