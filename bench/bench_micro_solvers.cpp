// Micro-benchmarks (google-benchmark) for the substrate solvers: SAT
// solving, 2QBF CEGAR, group-MUS, interpolation and AIG manipulation.
// Not part of the paper's tables; tracks the health of the engines that
// power them.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "benchgen/generators.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "common/rng.h"
#include "core/decomposer.h"
#include "core/relaxation.h"
#include "itp/interpolant.h"
#include "mus/group_mus.h"
#include "qbf/qbf2.h"
#include "sat/solver.h"

namespace {

using namespace step;

/// Solver configurations A/B'd by the `_modern` / `_legacy` variants —
/// shared with the committed BENCH_sat.json comparison (bench_common.h).
sat::SolverOptions modern_cfg() { return bench::modern_sat_config(); }
sat::SolverOptions legacy_cfg() { return bench::legacy_sat_config(); }

void run_random3cnf(benchmark::State& state, const sat::SolverOptions& cfg) {
  const int nv = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s(cfg);
    bench::add_random3cnf(s, nv, 4.1, 12345);
    benchmark::DoNotOptimize(s.solve());
  }
}

void bm_sat_random3cnf(benchmark::State& state) {
  run_random3cnf(state, modern_cfg());
}
BENCHMARK(bm_sat_random3cnf)->Arg(50)->Arg(100)->Arg(200);

void bm_sat_random3cnf_legacy(benchmark::State& state) {
  run_random3cnf(state, legacy_cfg());
}
BENCHMARK(bm_sat_random3cnf_legacy)->Arg(200);

void run_pigeonhole(benchmark::State& state, const sat::SolverOptions& cfg) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s(cfg);
    bench::add_pigeonhole(s, holes);
    benchmark::DoNotOptimize(s.solve());
  }
}

void bm_sat_pigeonhole(benchmark::State& state) {
  run_pigeonhole(state, modern_cfg());
}
BENCHMARK(bm_sat_pigeonhole)->Arg(5)->Arg(6)->Arg(7);

void bm_sat_pigeonhole_legacy(benchmark::State& state) {
  run_pigeonhole(state, legacy_cfg());
}
BENCHMARK(bm_sat_pigeonhole_legacy)->Arg(6)->Arg(7);

/// The incremental pattern of the CEGAR loops: one solver, a growing
/// clause set, many assumption-driven solve() calls — the case the
/// inter-solve inprocessing targets.
void run_incremental_assumptions(benchmark::State& state,
                                 const sat::SolverOptions& cfg) {
  const int nv = 60;
  for (auto _ : state) {
    Rng rng(4242);
    sat::Solver s(cfg);
    for (int i = 0; i < nv; ++i) s.new_var();
    for (int round = 0; round < 40; ++round) {
      for (int c = 0; c < 12; ++c) {
        sat::LitVec cl;
        const int w = rng.next_int(2, 4);
        for (int j = 0; j < w; ++j) {
          cl.push_back(sat::mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
        }
        s.add_clause(cl);
      }
      sat::LitVec assumps;
      for (int a = 0; a < 3; ++a) {
        assumps.push_back(
            sat::mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }
      benchmark::DoNotOptimize(s.solve(assumps));
      if (!s.is_ok()) break;
    }
  }
}

void bm_sat_incremental_modern(benchmark::State& state) {
  run_incremental_assumptions(state, modern_cfg());
}
BENCHMARK(bm_sat_incremental_modern);

void bm_sat_incremental_legacy(benchmark::State& state) {
  run_incremental_assumptions(state, legacy_cfg());
}
BENCHMARK(bm_sat_incremental_legacy);

void bm_qbf_partition_query(benchmark::State& state) {
  // One QD bound query on a mux-tree cone (the paper's inner loop).
  const int sel = static_cast<int>(state.range(0));
  const aig::Aig circ = benchgen::mux_tree(sel);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  const core::RelaxationMatrix m =
      core::build_relaxation_matrix(cone, core::GateOp::kOr);
  for (auto _ : state) {
    core::QbfPartitionFinder finder(m);
    benchmark::DoNotOptimize(
        finder.find_with_bound(core::QbfModel::kQD, sel));
  }
}
BENCHMARK(bm_qbf_partition_query)->Arg(2)->Arg(3);

void bm_mus_equivalence_groups(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const aig::Aig circ = benchgen::random_sop(n, n, 2, 1, 5, 777);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  const core::RelaxationMatrix m =
      core::build_relaxation_matrix(cone, core::GateOp::kOr);
  for (auto _ : state) {
    core::RelaxationSolver rs(m);
    core::MgDecomposer mg(rs);
    benchmark::DoNotOptimize(mg.find_partition());
  }
}
BENCHMARK(bm_mus_equivalence_groups)->Arg(4)->Arg(6);

void bm_interpolation_extract(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const aig::Aig circ = benchgen::random_sop(n, n, 1, 1, 4, 4242);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  core::DecomposeOptions o;
  o.engine = core::Engine::kMg;
  const core::BiDecomposer dec(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decompose(cone));
  }
}
BENCHMARK(bm_interpolation_extract)->Arg(3)->Arg(5);

void bm_aig_strash(benchmark::State& state) {
  const int gates = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchgen::random_dag(16, gates, 8, 99));
  }
}
BENCHMARK(bm_aig_strash)->Arg(1000)->Arg(10000);

void bm_tseitin_encode(benchmark::State& state) {
  const aig::Aig mult =
      benchgen::array_multiplier(static_cast<int>(state.range(0)));
  const core::Cone cone =
      core::extract_po_cone(mult, mult.num_outputs() - 2);
  for (auto _ : state) {
    sat::Solver s;
    std::vector<sat::Lit> in(cone.aig.num_inputs());
    for (auto& l : in) l = sat::mk_lit(s.new_var());
    cnf::SolverSink sink(s);
    benchmark::DoNotOptimize(cnf::encode_cone(cone.aig, cone.root, in, sink));
  }
}
BENCHMARK(bm_tseitin_encode)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
