#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace step::sat {

/// Boolean variable, numbered from 0.
using Var = std::int32_t;
constexpr Var kVarUndef = -1;

/// Literal: variable plus polarity, packed as 2*var + sign.
/// sign == 1 means the negated literal. The packed form indexes watch
/// lists and assignment arrays directly.
struct Lit {
  std::int32_t x = -2;

  constexpr bool operator==(const Lit&) const = default;
  constexpr bool operator<(const Lit& o) const { return x < o.x; }
};

constexpr Lit kLitUndef{-2};

constexpr Lit mk_lit(Var v, bool sign = false) {
  return Lit{(v << 1) | static_cast<std::int32_t>(sign)};
}
constexpr Lit operator~(Lit l) { return Lit{l.x ^ 1}; }
constexpr bool sign(Lit l) { return (l.x & 1) != 0; }
constexpr Var var(Lit l) { return l.x >> 1; }
/// Index usable for watch/assignment arrays: 2*var + sign.
constexpr std::int32_t index(Lit l) { return l.x; }

/// Three-valued logic for partial assignments.
enum class Lbool : std::uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

constexpr Lbool mk_lbool(bool b) { return b ? Lbool::kTrue : Lbool::kFalse; }
constexpr Lbool operator^(Lbool a, bool flip) {
  if (a == Lbool::kUndef) return a;
  return mk_lbool((a == Lbool::kTrue) != flip);
}

/// Compact string key for an Lbool sequence — the common currency of the
/// countermodel/refinement dedupe sets.
inline std::string lbool_key(std::span<const Lbool> vals) {
  std::string key;
  key.reserve(vals.size());
  for (const Lbool v : vals) {
    key.push_back(static_cast<char>('0' + static_cast<int>(v)));
  }
  return key;
}

/// Solver verdicts. kUnknown is returned when a conflict/time budget ran out.
enum class Result : std::uint8_t { kSat, kUnsat, kUnknown };

using LitVec = std::vector<Lit>;

}  // namespace step::sat
