// Engine-portfolio contract tests: the probe and the race plan are pure
// functions of the cone (deterministic across re-probes and thread
// counts), raced answers equal the fixed-engine oracle's on every cone,
// and the portfolio's -j1 / -j8 runs report identical statuses and
// probe/race/cancel counters. Pool-transfer counts are timing-dependent
// by design and only checked against their invariants.

#include "core/portfolio.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "benchgen/generators.h"
#include "common/race.h"
#include "core/circuit_driver.h"

namespace step {
namespace {

core::DecomposeOptions generous_opts(core::Engine engine, core::GateOp op) {
  core::DecomposeOptions o;
  o.engine = engine;
  o.op = op;
  // Budgets far above what these cones need: every engine concludes, so
  // no wall-clock expiry can leak nondeterminism into the comparisons.
  o.po_budget_s = 60.0;
  o.optimum.call_timeout_s = 10.0;
  return o;
}

// ---------- probe ----------------------------------------------------------

TEST(PortfolioProbe, IsDeterministicAndSane) {
  const aig::Aig circ = benchgen::parity_tree(12);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  const core::PortfolioOptions popts;
  const core::ProbeFeatures a = core::probe_cone(cone, popts);
  const core::ProbeFeatures b = core::probe_cone(cone, popts);
  EXPECT_EQ(a.support, 12);
  EXPECT_EQ(a.support, b.support);
  EXPECT_EQ(a.ands, b.ands);
  EXPECT_DOUBLE_EQ(a.onset_density, b.onset_density);
  EXPECT_DOUBLE_EQ(a.sensitivity, b.sensitivity);
  EXPECT_EQ(a.hard, b.hard);
  EXPECT_GE(a.onset_density, 0.0);
  EXPECT_LE(a.onset_density, 1.0);
  // Parity flips on every input flip: sensitivity is exactly 1, the onset
  // is balanced, and 12 inputs are over the hardness threshold.
  EXPECT_DOUBLE_EQ(a.sensitivity, 1.0);
  EXPECT_NEAR(a.onset_density, 0.5, 0.2);
  EXPECT_TRUE(a.hard);
}

TEST(PortfolioProbe, SmallConesAreNotHard) {
  const aig::Aig circ = benchgen::ripple_adder(2);  // supports <= 5
  const core::PortfolioOptions popts;
  for (std::uint32_t po = 0; po < circ.num_outputs(); ++po) {
    const core::Cone cone = core::extract_po_cone(circ, po);
    if (cone.n() < 2) continue;
    EXPECT_FALSE(core::probe_cone(cone, popts).hard) << "po " << po;
  }
}

// ---------- plan -----------------------------------------------------------

core::ProbeFeatures hard_features() {
  core::ProbeFeatures f;
  f.support = 14;
  f.ands = 60;
  f.sensitivity = 0.8;
  f.hard = true;
  return f;
}

TEST(PortfolioPlan, HardConesRaceWithMgAnchor) {
  core::PortfolioOptions popts;
  const core::ProbeFeatures f = hard_features();
  for (int width : {2, 3}) {
    popts.race_width = width;
    const std::vector<core::Engine> plan =
        core::plan_engines(f, popts, core::Engine::kQbfCombined);
    ASSERT_EQ(plan.size(), static_cast<std::size_t>(width));
    // MG anchors every race: the portfolio concludes wherever fixed MG
    // concludes, which is what the CI gate's #Dec floor relies on.
    EXPECT_EQ(plan[0], core::Engine::kMg);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      for (std::size_t j = i + 1; j < plan.size(); ++j) {
        EXPECT_NE(plan[i], plan[j]) << "duplicate engine in the race";
      }
    }
  }
}

TEST(PortfolioPlan, WidthOneAndEasyConesGoSolo) {
  core::PortfolioOptions popts;
  popts.race_width = 1;
  EXPECT_EQ(core::plan_engines(hard_features(), popts,
                               core::Engine::kQbfCombined).size(),
            1u);

  popts.race_width = 3;
  core::ProbeFeatures tiny;
  tiny.support = 3;
  const auto quality =
      core::plan_engines(tiny, popts, core::Engine::kQbfDisjoint);
  ASSERT_EQ(quality.size(), 1u);
  EXPECT_EQ(quality[0], core::Engine::kQbfDisjoint);  // optimum engine

  core::ProbeFeatures medium;
  medium.support = 8;  // under the hardness cut, over the quality band
  const auto fast =
      core::plan_engines(medium, popts, core::Engine::kQbfDisjoint);
  ASSERT_EQ(fast.size(), 1u);
  EXPECT_EQ(fast[0], core::Engine::kMg);
}

TEST(PortfolioPlan, NearConstantConesAreNeverRaced) {
  core::PortfolioOptions popts;
  const aig::Aig circ = benchgen::parity_tree(12);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  core::ProbeFeatures f = core::probe_cone(cone, popts);
  f.sensitivity = 0.0;  // a near-constant function, however wide
  f.hard = (f.support >= popts.hard_support || f.ands >= popts.hard_ands) &&
           f.sensitivity >= popts.min_sensitivity_to_race;
  EXPECT_FALSE(f.hard);
  EXPECT_EQ(core::plan_engines(f, popts, core::Engine::kQbfCombined).size(),
            1u);
}

// ---------- raced answers vs. the fixed-engine oracle ----------------------

TEST(PortfolioRace, WinnerAnswersEqualFixedEngineOracle) {
  // A raced answer may come from any engine, but the *status* is
  // engine-independent (all engines are sound; non-decomposability is a
  // property of the cone): whatever fixed-engine runs conclude, the
  // portfolio must conclude identically, at every race width.
  const aig::Aig circ =
      benchgen::merge({benchgen::parity_tree(12), benchgen::ripple_adder(3)});
  const core::GateOp op = core::GateOp::kXor;
  const auto opts = generous_opts(core::Engine::kQbfCombined, op);

  const auto mg = core::run_circuit(
      circ, "mix", generous_opts(core::Engine::kMg, op), 600.0, {1});
  const auto qdb = core::run_circuit(circ, "mix", opts, 600.0, {1});
  ASSERT_EQ(mg.pos.size(), qdb.pos.size());

  for (int width : {1, 2, 3}) {
    SCOPED_TRACE("race width " + std::to_string(width));
    core::ParallelDriverOptions par;
    par.portfolio.enabled = true;
    par.portfolio.race_width = width;
    const auto r = core::run_circuit(circ, "mix", opts, 600.0, par);
    ASSERT_EQ(r.pos.size(), mg.pos.size());
    for (std::size_t i = 0; i < r.pos.size(); ++i) {
      SCOPED_TRACE("po slot " + std::to_string(i));
      EXPECT_EQ(r.pos[i].status, mg.pos[i].status);
      EXPECT_EQ(r.pos[i].status, qdb.pos[i].status);
      EXPECT_TRUE(r.pos[i].probed);
      EXPECT_EQ(r.pos[i].raced, width > 1 && r.pos[i].support >= 10);
    }
    EXPECT_EQ(r.num_probed(), static_cast<int>(r.pos.size()));
    if (width > 1) {
      EXPECT_GE(r.num_raced(), 1) << "the parity cone must race";
      // Decided races cancel every loser.
      EXPECT_EQ(r.total_race_cancels(),
                static_cast<long>(r.num_raced()) * (width - 1));
    } else {
      EXPECT_EQ(r.num_raced(), 0);
    }
  }
}

TEST(PortfolioRace, DirectRaceValidatesWinnerAndCountsTransfers) {
  const aig::Aig circ = benchgen::parity_tree(12);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  const auto opts = generous_opts(core::Engine::kQbfCombined, core::GateOp::kXor);
  core::PortfolioOptions popts;
  popts.enabled = true;
  popts.race_width = 3;
  RaceScheduler sched(2);

  const core::PortfolioOutcome out =
      core::decompose_portfolio(cone, opts, popts, &sched);
  EXPECT_TRUE(out.raced);
  EXPECT_EQ(out.race_width, 3);
  ASSERT_EQ(out.result.status, core::DecomposeStatus::kDecomposed);
  // The winning partition went through decompose_with_partition: it is
  // extracted and SAT-verified like any fixed-engine result.
  ASSERT_TRUE(out.result.functions.has_value());
  EXPECT_TRUE(out.result.verified);
  EXPECT_EQ(out.race_cancels, 2);
  // Transfer invariants (the counts themselves are timing-dependent):
  // each published countermodel can be imported at most once per other
  // QBF racer, and nothing can be imported that was never published.
  EXPECT_GE(out.pool_published, 0);
  EXPECT_LE(out.pool_imported, out.pool_published * (out.race_width - 1));
}

TEST(PortfolioRace, SoloFallbackWithoutSchedulerMatchesFixedEngine) {
  const aig::Aig circ = benchgen::parity_tree(12);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  const auto opts = generous_opts(core::Engine::kQbfCombined, core::GateOp::kXor);
  core::PortfolioOptions popts;
  popts.enabled = true;
  popts.race_width = 2;
  const core::PortfolioOutcome out =
      core::decompose_portfolio(cone, opts, popts, /*sched=*/nullptr);
  EXPECT_FALSE(out.raced);
  EXPECT_EQ(out.race_width, 1);
  EXPECT_EQ(out.result.status, core::DecomposeStatus::kDecomposed);
}

// ---------- thread-count invariance ----------------------------------------

TEST(PortfolioRace, CountersAndStatusesAreThreadCountInvariant) {
  // Probe features and race plans are pure functions of the cone, and
  // with generous budgets every race concludes — so statuses, reasons,
  // probe/race flags, widths, and cancel counts must all be identical
  // between a sequential and an 8-worker run. (Winner identity and pool
  // transfers may differ; they are deliberately not compared.)
  const aig::Aig circ =
      benchgen::merge({benchgen::parity_tree(12), benchgen::parity_tree(11),
                       benchgen::ripple_adder(3)});
  const auto opts = generous_opts(core::Engine::kQbfCombined, core::GateOp::kXor);
  core::ParallelDriverOptions p1;
  p1.num_threads = 1;
  p1.portfolio.enabled = true;
  p1.portfolio.race_width = 2;
  core::ParallelDriverOptions p8 = p1;
  p8.num_threads = 8;

  const auto seq = core::run_circuit(circ, "mix", opts, 600.0, p1);
  const auto par = core::run_circuit(circ, "mix", opts, 600.0, p8);
  ASSERT_EQ(seq.pos.size(), par.pos.size());
  EXPECT_EQ(seq.outcome_counts(), par.outcome_counts());
  EXPECT_EQ(seq.num_probed(), par.num_probed());
  EXPECT_EQ(seq.num_raced(), par.num_raced());
  EXPECT_EQ(seq.total_race_cancels(), par.total_race_cancels());
  for (std::size_t i = 0; i < seq.pos.size(); ++i) {
    SCOPED_TRACE("po slot " + std::to_string(i));
    EXPECT_EQ(seq.pos[i].status, par.pos[i].status);
    EXPECT_EQ(seq.pos[i].reason, par.pos[i].reason);
    EXPECT_EQ(seq.pos[i].probed, par.pos[i].probed);
    EXPECT_EQ(seq.pos[i].raced, par.pos[i].raced);
    EXPECT_EQ(seq.pos[i].race_width, par.pos[i].race_width);
    EXPECT_EQ(seq.pos[i].race_cancels, par.pos[i].race_cancels);
  }
}

TEST(PortfolioRace, FaultInjectionDisablesRacingDeterministically) {
  // The per-cone fault stream is neither thread-safe nor meaningfully
  // divisible between racers, so an injected run falls back to solo
  // portfolio — and must stay thread-count invariant like any other
  // injected run.
  const aig::Aig circ =
      benchgen::merge({benchgen::parity_tree(12), benchgen::ripple_adder(3)});
  const auto opts = generous_opts(core::Engine::kMg, core::GateOp::kXor);
  FaultPlan plan;
  plan.seed = 23;
  plan.rate = 0.1;
  core::ParallelDriverOptions p1;
  p1.num_threads = 1;
  p1.faults = &plan;
  p1.portfolio.enabled = true;
  p1.portfolio.race_width = 3;
  core::ParallelDriverOptions p8 = p1;
  p8.num_threads = 8;
  const auto seq = core::run_circuit(circ, "f", opts, 600.0, p1);
  const auto par = core::run_circuit(circ, "f", opts, 600.0, p8);
  ASSERT_EQ(seq.pos.size(), par.pos.size());
  EXPECT_EQ(seq.outcome_counts(), par.outcome_counts());
  EXPECT_EQ(seq.num_raced(), 0);
  EXPECT_EQ(par.num_raced(), 0);
  for (std::size_t i = 0; i < seq.pos.size(); ++i) {
    EXPECT_EQ(seq.pos[i].status, par.pos[i].status) << "po slot " << i;
    EXPECT_EQ(seq.pos[i].reason, par.pos[i].reason) << "po slot " << i;
  }
}

// ---------- race scheduler -------------------------------------------------

TEST(RaceScheduler, RunsEveryEntryAndReturnsAfterAll) {
  RaceScheduler sched(2);
  EXPECT_EQ(sched.helper_threads(), 2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> entries;
    for (int i = 0; i < 3; ++i) {
      entries.push_back([&ran] { ran.fetch_add(1); });
    }
    sched.run_all(entries);
    EXPECT_EQ(ran.load(), 3);
  }
  std::vector<std::function<void()>> none;
  sched.run_all(none);  // empty race is a no-op
}

}  // namespace
}  // namespace step
