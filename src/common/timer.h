#pragma once

#include <atomic>
#include <chrono>

#include "common/fault.h"
#include "common/resource.h"

namespace step {

/// Wall-clock stopwatch.
///
/// The decomposition drivers follow the paper's budgeting scheme: a small
/// per-QBF-call timeout and a larger per-circuit budget. Both are enforced
/// with wall time through this class.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Deadline helper: `Deadline d(2.5); ... if (d.expired()) ...`.
/// A non-positive budget means "no deadline".
///
/// Every budget consumer already polls expired() at deterministic points
/// (engine loop heads, solver conflict checks, window reachability
/// queries), which makes this class the single interruption seam of the
/// whole stack. Beyond the wall clock, expired() consults the optional
/// attachments below, so the same poll points also observe memory-cap
/// trips, injected faults, cancellation (SIGINT), and a parent deadline —
/// with zero call-site changes. The *first* cause to fire is latched in
/// trip(); callers classify it into the outcome taxonomy
/// (core/outcome.h).
class Deadline {
 public:
  /// Why this deadline reports expiry. Kept cause-level (not policy-level)
  /// so common/ stays below core/: core::reason_of() maps a Trip plus its
  /// context (per-cone vs per-run deadline) onto an OutcomeReason.
  enum class Trip : std::uint8_t {
    kNone = 0,
    kWall,           ///< wall-clock budget ran out
    kForced,         ///< force_expire_after_polls test seam
    kParent,         ///< an attached parent (per-run) deadline expired
    kMem,            ///< attached MemTracker over a memory cap
    kInjectedAlloc,  ///< injected allocation failure (FaultKind::kAllocFail)
    kInjectedAbort,  ///< injected solver/engine abort (FaultKind::kAbort)
    kInjectedExpire, ///< injected expiry (FaultKind::kExpire)
    kCancelled,      ///< attached cancel flag set (SIGINT)
  };

  explicit Deadline(double budget_s = 0.0) : budget_s_(budget_s) {}

  // The trip latch is atomic (the per-run deadline is polled by every
  // worker); copying reproduces budget and latched state.
  Deadline(const Deadline& o)
      : budget_s_(o.budget_s_),
        timer_(o.timer_),
        polls_left_(o.polls_left_),
        faults_(o.faults_),
        mem_(o.mem_),
        cancel_(o.cancel_),
        parent_(o.parent_),
        trip_(o.trip_.load(std::memory_order_relaxed)) {}
  Deadline& operator=(const Deadline& o) {
    budget_s_ = o.budget_s_;
    timer_ = o.timer_;
    polls_left_ = o.polls_left_;
    faults_ = o.faults_;
    mem_ = o.mem_;
    cancel_ = o.cancel_;
    parent_ = o.parent_;
    trip_.store(o.trip_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  bool enabled() const {
    return budget_s_ > 0.0 || polls_left_ >= 0 || faults_ != nullptr ||
           mem_ != nullptr || cancel_ != nullptr || parent_ != nullptr;
  }

  bool expired() const {
    if (trip() != Trip::kNone) return true;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      record(Trip::kCancelled);
      return true;
    }
    if (parent_ != nullptr && parent_->expired()) {
      record(Trip::kParent);
      return true;
    }
    if (mem_ != nullptr && mem_->tripped()) {
      record(Trip::kMem);
      return true;
    }
    if (faults_ != nullptr) {
      switch (faults_->poll()) {
        case FaultKind::kExpire: record(Trip::kInjectedExpire); return true;
        case FaultKind::kAllocFail: record(Trip::kInjectedAlloc); return true;
        case FaultKind::kAbort: record(Trip::kInjectedAbort); return true;
        default: break;
      }
    }
    if (polls_left_ >= 0) {
      if (polls_left_ == 0) {
        record(Trip::kForced);
        return true;
      }
      --polls_left_;
      return false;
    }
    if (budget_s_ > 0.0 && timer_.elapsed_s() >= budget_s_) {
      record(Trip::kWall);
      return true;
    }
    return false;
  }

  /// First cause that made expired() return true; kNone until then.
  Trip trip() const { return trip_.load(std::memory_order_relaxed); }

  /// Test seam: report expiry after exactly `polls` more expired() calls,
  /// independent of wall time. Deadline consumers poll at deterministic
  /// points (loop heads, solver conflict checks), so tests can force an
  /// expiry at any reproducible moment mid-search — which wall-clock
  /// budgets cannot do. Never used outside tests.
  void force_expire_after_polls(int polls) { polls_left_ = polls; }

  /// Attachments: each expired() poll also checks the fault stream /
  /// memory tracker / cancel flag / parent deadline. All observed objects
  /// must outlive this deadline.
  void attach_faults(FaultStream* faults) { faults_ = faults; }
  void attach_mem(const MemTracker* mem) { mem_ = mem; }
  void attach_cancel(const std::atomic<bool>* cancel) { cancel_ = cancel; }
  void attach_parent(const Deadline* parent) { parent_ = parent; }

  /// Seconds remaining; +infinity-ish large value when disabled.
  double remaining_s() const {
    if (trip() != Trip::kNone) return 0.0;
    double r = 1e30;
    if (parent_ != nullptr) r = parent_->remaining_s();
    if (polls_left_ >= 0) return polls_left_ == 0 ? 0.0 : r;
    if (budget_s_ > 0.0) {
      const double own = budget_s_ - timer_.elapsed_s();
      r = own < r ? own : r;
    }
    return r > 0.0 ? r : 0.0;
  }

 private:
  void record(Trip t) const {
    Trip expect = Trip::kNone;
    trip_.compare_exchange_strong(expect, t, std::memory_order_relaxed);
  }

  double budget_s_;
  Timer timer_;
  mutable int polls_left_ = -1;
  FaultStream* faults_ = nullptr;
  const MemTracker* mem_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  const Deadline* parent_ = nullptr;
  mutable std::atomic<Trip> trip_{Trip::kNone};
};

}  // namespace step
