#include "benchgen/suite.h"

#include <cstdlib>
#include <cstring>

#include "aig/ops.h"
#include "benchgen/generators.h"

namespace step::benchgen {

namespace {

std::vector<BenchCircuit> tiny_suite() {
  std::vector<BenchCircuit> s;
  s.push_back({"tadd", "C880", ripple_adder(4)});
  s.push_back({"tcmp", "C2670", comparator(4)});
  s.push_back({"tpar", "i10", parity_tree(6)});
  s.push_back({"tpri", "s5378", priority_encoder(6)});
  s.push_back({"trnd", "s1423", random_dag(8, 24, 6, 0x51423)});
  s.push_back({"tcnt", "b07", counter_next(5)});
  s.push_back({"tsop", "sbc", random_sop(3, 3, 2, 6, 4, 0x5bc)});
  s.push_back({"tmux", "pair", mux_tree(2)});
  // Don't-care showcase: exact engines decompose none of its MAJ POs,
  // the SDC-window mode decomposes all of them (see implied_majority).
  s.push_back({"tdcw", "dc-window", implied_majority(2)});
  return s;
}

std::vector<BenchCircuit> small_suite() {
  std::vector<BenchCircuit> s;
  s.push_back({"xc880", "C880", merge({alu(5), random_sop(4, 4, 1, 5, 4, 0x880)})});
  s.push_back({"xc2670", "C2670",
               merge({carry_select_adder(8, 3), comparator(6),
                      random_sop(4, 4, 2, 6, 4, 0x2670)})});
  s.push_back({"xc7552", "C7552",
               merge({ripple_adder(8), parity_tree(10), priority_encoder(10),
                      random_sop(5, 5, 2, 8, 5, 0xc7552)})});
  s.push_back({"xrot", "rot", barrel_rotator(8)});
  s.push_back({"xi10", "i10", random_dag(20, 90, 18, 0x110)});
  s.push_back({"xpair", "pair", merge({array_multiplier(4), mux_tree(3)})});
  s.push_back({"xs1423", "s1423",
               merge({lfsr_next(12, 0b110000001011), counter_next(8),
                      random_sop(4, 4, 2, 6, 4, 0x51423)})});
  s.push_back({"xs5378", "s5378",
               merge({gray_next(8), decoder(4), random_dag(12, 40, 10, 0x5378)})});
  s.push_back({"xs9234", "s9234.1",
               merge({counter_next(10), comparator(7), parity_tree(8),
                      random_sop(5, 5, 1, 8, 4, 0x9234)})});
  s.push_back({"xs15850", "s15850.1",
               merge({alu(4), barrel_rotator(6), lfsr_next(14, 0b10000000101001)})});
  s.push_back({"xs38417", "s38417", random_dag(24, 140, 28, 0x38417)});
  s.push_back({"xs38584", "s38584.1",
               merge({priority_encoder(12), mux_tree(3), majority(9)})});
  s.push_back({"xb07", "ITC b07",
               merge({counter_next(6), hamming_ge(5, 3),
                      random_sop(3, 3, 2, 5, 3, 0xb07)})});
  s.push_back({"xb12", "ITC b12", random_dag(14, 48, 14, 0xb12)});
  s.push_back({"xclma", "clma",
               merge({decoder(4), array_multiplier(3),
                      random_sop(5, 5, 2, 8, 5, 0xc1a)})});
  s.push_back({"xsbc", "sbc",
               merge({gray_next(7), priority_encoder(8),
                      random_sop(4, 4, 2, 8, 5, 0x5bc)})});
  s.push_back({"xmm9a", "mm9a", merge({comparator(9), mux_tree(3)})});
  s.push_back({"xmm9b", "mm9b",
               merge({comparator(8), hamming_ge(4, 2), parity_tree(6),
                      random_sop(4, 4, 1, 4, 3, 0x99b)})});
  s.push_back({"xapex", "apex7",
               random_sop(6, 6, 3, 16, 6, 0xa9e7)});
  s.push_back({"xterm1", "term1",
               merge({random_sop(5, 5, 2, 10, 5, 0x7e41), mux_tree(3)})});
  s.push_back({"xdcw", "dc-window", implied_majority(5)});
  return s;
}

std::vector<BenchCircuit> full_suite() {
  std::vector<BenchCircuit> s;
  s.push_back({"xc880", "C880", alu(8)});
  s.push_back({"xc2670", "C2670",
               merge({carry_select_adder(12, 4), comparator(10)})});
  s.push_back({"xc7552", "C7552",
               merge({ripple_adder(12), parity_tree(16), priority_encoder(16)})});
  s.push_back({"xrot", "rot", barrel_rotator(16)});
  s.push_back({"xi10", "i10", random_dag(32, 160, 30, 0x110)});
  s.push_back({"xpair", "pair", merge({array_multiplier(5), mux_tree(4)})});
  s.push_back({"xs1423", "s1423",
               merge({lfsr_next(16, 0b1101000000001000), counter_next(12)})});
  s.push_back({"xs5378", "s5378",
               merge({gray_next(12), decoder(5), random_dag(18, 70, 16, 0x5378)})});
  s.push_back({"xs9234", "s9234.1",
               merge({counter_next(14), comparator(10), parity_tree(12)})});
  s.push_back({"xs15850", "s15850.1",
               merge({alu(6), barrel_rotator(8), lfsr_next(18, 0b100000000010000011)})});
  s.push_back({"xs38417", "s38417", random_dag(36, 240, 40, 0x38417)});
  s.push_back({"xs38584", "s38584.1",
               merge({priority_encoder(16), mux_tree(4), majority(11)})});
  s.push_back({"xb07", "ITC b07", merge({counter_next(8), hamming_ge(6, 3)})});
  s.push_back({"xb12", "ITC b12", random_dag(18, 70, 18, 0xb12)});
  s.push_back({"xclma", "clma", merge({decoder(5), array_multiplier(4)})});
  s.push_back({"xsbc", "sbc",
               merge({gray_next(9), priority_encoder(10),
                      random_sop(5, 5, 3, 10, 6, 0x5bc)})});
  s.push_back({"xmm9a", "mm9a", merge({comparator(9), mux_tree(4)})});
  s.push_back({"xmm9b", "mm9b",
               merge({comparator(9), hamming_ge(5, 3), parity_tree(8)})});
  s.push_back({"xapex", "apex7", random_sop(8, 8, 4, 20, 8, 0xa9e7)});
  s.push_back({"xterm1", "term1",
               merge({random_sop(7, 7, 3, 14, 6, 0x7e41), mux_tree(4)})});
  s.push_back({"xdcw", "dc-window", implied_majority(8)});
  return s;
}

}  // namespace

std::vector<BenchCircuit> standard_suite(SuiteScale scale) {
  std::vector<BenchCircuit> s;
  switch (scale) {
    case SuiteScale::kTiny: s = tiny_suite(); break;
    case SuiteScale::kSmall: s = small_suite(); break;
    case SuiteScale::kFull: s = full_suite(); break;
  }
  // Lint invariant: suite circuits carry no dead nodes. The generators
  // build speculatively (mux/xor expansions strash-folded later), so a
  // final sweep keeps every emitted benchmark AIG-DANGLING-clean — see
  // tests/lint_test.cpp (LintBenchgen).
  for (BenchCircuit& b : s) b.aig = aig::sweep_dead(b.aig);
  return s;
}

SuiteScale scale_from_env() {
  const char* env = std::getenv("STEP_BENCH_SCALE");
  if (env == nullptr) return SuiteScale::kSmall;
  if (std::strcmp(env, "tiny") == 0) return SuiteScale::kTiny;
  if (std::strcmp(env, "full") == 0) return SuiteScale::kFull;
  return SuiteScale::kSmall;
}

}  // namespace step::benchgen
