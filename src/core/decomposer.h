#pragma once

#include <optional>

#include "common/fault.h"
#include "common/resource.h"
#include "common/timer.h"
#include "core/extract.h"
#include "core/ljh.h"
#include "core/mg.h"
#include "core/optimum.h"
#include "core/qbf_model.h"

namespace step::core {

/// The decomposition engines the paper evaluates against each other.
enum class Engine : std::uint8_t {
  kLjh,          ///< Bi-dec / LJH [16] (OR model, best-quality mode)
  kMg,           ///< STEP-MG [7] (group-oriented MUS)
  kQbfDisjoint,  ///< STEP-QD — optimum disjointness via QBF
  kQbfBalanced,  ///< STEP-QB — optimum balancedness via QBF
  kQbfCombined,  ///< STEP-QDB — optimum disjointness+balancedness via QBF
};

inline const char* to_string(Engine e) {
  switch (e) {
    case Engine::kLjh: return "LJH";
    case Engine::kMg: return "STEP-MG";
    case Engine::kQbfDisjoint: return "STEP-QD";
    case Engine::kQbfBalanced: return "STEP-QB";
    case Engine::kQbfCombined: return "STEP-QDB";
  }
  return "?";
}

inline bool is_qbf_engine(Engine e) {
  return e == Engine::kQbfDisjoint || e == Engine::kQbfBalanced ||
         e == Engine::kQbfCombined;
}

struct DecomposeOptions {
  GateOp op = GateOp::kOr;
  Engine engine = Engine::kQbfDisjoint;
  /// Per-PO wall budget (the paper gives each circuit 6000 s total).
  double po_budget_s = 10.0;
  /// Bootstrap the QBF engines with an MG partition (paper Section V.A:
  /// "STEP-{QD,QB,QDB} is bootstrapped with the result of STEP-MG").
  bool bootstrap_with_mg = true;
  /// Compute fA/fB after the partition (interpolation / cofactoring).
  bool extract = true;
  /// SAT-verify f ≡ fA <OP> fB after extraction.
  bool verify = true;
  /// Drop semantically irrelevant inputs before decomposing (one SAT
  /// check per input; see core/reduce.h). The reported partition/metrics
  /// then refer to the reduced support.
  bool reduce_support = false;
  LjhOptions ljh;
  MgOptions mg;
  OptimumOptions optimum;
  QbfFinderOptions qbf;
  /// SAT-solver configuration applied to every solver the engines build
  /// (relaxation / LJH / CEGAR pair): restart mode, LBD tiers,
  /// inprocessing — see sat::SolverOptions and docs/SOLVER.md.
  sat::SolverOptions sat;
  /// Don't-care-aware mode: the circuit drivers compute an SDC window per
  /// cone (aig/window.h) and decompose the windowed function on its care
  /// set, falling back to the exact cone when no window with don't-cares
  /// exists or the windowed attempt fails — so DC mode never decomposes
  /// fewer cones than exact mode. Cone-level callers pass a care set to
  /// decompose() directly; this flag plus the caps below steer the
  /// drivers.
  bool use_dont_cares = false;
  /// Window caps (cut depth/width, simulation words, SAT completions).
  aig::WindowOptions window;
  /// Resource-governance attachments (all optional, all non-owning; the
  /// circuit drivers wire them per cone). They hook into the per-PO
  /// deadline's poll seam, so every existing deadline check in the
  /// engines doubles as a memory/fault/cancellation trip point:
  ///  - `mem`: per-cone memory account — a tripped tracker aborts the
  ///    cone with OutcomeReason::kMemLimit;
  ///  - `faults`: deterministic fault-injection stream (testing);
  ///  - `run_deadline`: run-level deadline/cancellation the per-PO
  ///    deadline chains to (OutcomeReason::kCircuitDeadline).
  MemTracker* mem = nullptr;
  FaultStream* faults = nullptr;
  const Deadline* run_deadline = nullptr;
};

enum class DecomposeStatus : std::uint8_t {
  kDecomposed,
  kNotDecomposable,  ///< proven: no non-trivial partition for this op
  kUnknown,          ///< budget exhausted before any conclusion
};

struct DecomposeResult {
  DecomposeStatus status = DecomposeStatus::kUnknown;
  /// Why no conclusion was reached (kOk when status != kUnknown). A
  /// result that fails SAT verification — injected or real — is discarded
  /// and reported here as kVerificationFailed, never returned as an
  /// unverified "success".
  OutcomeReason reason = OutcomeReason::kOk;
  Partition partition;
  Metrics metrics;
  /// QBF engines only: optimum proven for the engine's target metric.
  bool proven_optimal = false;
  std::optional<ExtractedFunctions> functions;
  bool verified = false;
  double cpu_s = 0.0;
  int sat_calls = 0;
  int qbf_calls = 0;
  /// QBF engines only: total CEGAR refinement rounds across all bound
  /// queries, and conflicts spent in the abstraction / verification SAT
  /// solvers of the (persistent or scratch) solver pair.
  int qbf_iterations = 0;
  std::uint64_t qbf_abstraction_conflicts = 0;
  std::uint64_t qbf_verification_conflicts = 0;
  /// Aggregated low-level SAT statistics of the solvers this call owned
  /// (relaxation solver + CEGAR pair): conflicts, restarts, tier
  /// occupancy, inprocessing counters, … (see sat::Solver::Stats).
  sat::Solver::Stats solver_stats;
};

/// Result of one engine's pure partition-search strand: a partition (or a
/// proof there is none, or a typed give-up) plus the strand's own cost
/// counters. No extraction, no verification — that is the orchestration
/// layer's job (BiDecomposer::decompose, or the portfolio racer's
/// post-race validation).
struct SearchStrand {
  DecomposeStatus status = DecomposeStatus::kUnknown;
  OutcomeReason reason = OutcomeReason::kOk;
  Partition partition;  ///< valid when status == kDecomposed
  bool proven_optimal = false;
  int sat_calls = 0;
  int qbf_calls = 0;
  int qbf_iterations = 0;
  std::uint64_t qbf_abstraction_conflicts = 0;
  std::uint64_t qbf_verification_conflicts = 0;
  sat::Solver::Stats solver_stats;
  /// Shared-pool transfer counts (portfolio races only; see qbf_model.h).
  long pool_published = 0;
  long pool_imported = 0;
};

/// Runs one engine's partition search on a prebuilt relaxation matrix.
/// This is the cancellable unit of the engine portfolio: every solver the
/// strand builds (relaxation, LJH, CEGAR pair) is private to the call and
/// dies with it, so a racer losing the race — its deadline tripping
/// kCancelled mid-solve — unwinds without poisoning anything persistent.
/// The matrix itself is read-only and may be shared across concurrent
/// strands. `opts` supplies the engine sub-options, the SAT configuration
/// (including the memory account via opts.sat.mem) and, for QBF engines,
/// opts.qbf.shared_pool for cross-racer learning; opts.engine is ignored
/// in favour of `engine`.
SearchStrand run_search_strand(const RelaxationMatrix& matrix, Engine engine,
                               const DecomposeOptions& opts,
                               const Deadline* deadline);

/// Facade running one engine on one cone — the per-PO unit of work of the
/// paper's experiments and of this library's public API.
class BiDecomposer {
 public:
  explicit BiDecomposer(DecomposeOptions opts = {}) : opts_(opts) {
    // The cone's memory account meters every solver this call builds:
    // engines construct their relaxation/LJH/CEGAR solvers from
    // `opts_.sat`, so threading the tracker through it here charges all
    // clause arenas without per-engine plumbing.
    if (opts_.mem != nullptr && opts_.sat.mem == nullptr) {
      opts_.sat.mem = opts_.mem;
    }
  }

  const DecomposeOptions& options() const { return opts_; }

  /// Decomposes one cone. A non-trivial `care` relaxes every validity
  /// check, the extraction, and the verification to the care minterms
  /// (OR/AND; XOR partitions stay exact — see build_relaxation_matrix).
  DecomposeResult decompose(const Cone& cone,
                            const CareSet* care = nullptr) const;

 private:
  DecomposeOptions opts_;
};

/// Decomposition under a *known* partition — the setting of Proposition 1
/// ([16] assumes the partition is given; the paper automates finding it).
/// Validates the partition with one SAT call, then extracts and verifies.
/// Status is kNotDecomposable when the partition is trivial or invalid.
/// With a care set, validity/extraction/verification all run against the
/// care window instead of demanding exact cone equivalence.
DecomposeResult decompose_with_partition(const Cone& cone, GateOp op,
                                         const Partition& partition,
                                         bool extract = true,
                                         bool verify = true,
                                         const CareSet* care = nullptr,
                                         FaultStream* faults = nullptr);

}  // namespace step::core
