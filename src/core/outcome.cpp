#include "core/outcome.h"

namespace step::core {

const char* to_string(OutcomeReason r) {
  switch (r) {
    case OutcomeReason::kOk: return "ok";
    case OutcomeReason::kEngineDeadline: return "engine_deadline";
    case OutcomeReason::kCircuitDeadline: return "circuit_deadline";
    case OutcomeReason::kConflictBudget: return "conflict_budget";
    case OutcomeReason::kMemLimit: return "mem_limit";
    case OutcomeReason::kInjectedFault: return "injected_fault";
    case OutcomeReason::kVerificationFailed: return "verification_failed";
    case OutcomeReason::kIoError: return "io_error";
  }
  return "?";
}

OutcomeReason reason_of(Deadline::Trip trip, bool run_level) {
  switch (trip) {
    case Deadline::Trip::kNone:
      return OutcomeReason::kOk;
    case Deadline::Trip::kWall:
    case Deadline::Trip::kForced:
    case Deadline::Trip::kInjectedExpire:
      // The seam and the injector stand in for "this budget ran out".
      return run_level ? OutcomeReason::kCircuitDeadline
                       : OutcomeReason::kEngineDeadline;
    case Deadline::Trip::kParent:
    case Deadline::Trip::kCancelled:
      return OutcomeReason::kCircuitDeadline;
    case Deadline::Trip::kMem:
    case Deadline::Trip::kInjectedAlloc:
      return OutcomeReason::kMemLimit;
    case Deadline::Trip::kInjectedAbort:
      return OutcomeReason::kInjectedFault;
  }
  return OutcomeReason::kOk;
}

std::string OutcomeCounts::to_string() const {
  std::string s = "ok=" + std::to_string(of(OutcomeReason::kOk));
  for (int i = 1; i < kNumOutcomeReasons; ++i) {
    if (counts[i] == 0) continue;
    s += ' ';
    s += core::to_string(static_cast<OutcomeReason>(i));
    s += '=';
    s += std::to_string(counts[i]);
  }
  return s;
}

}  // namespace step::core
