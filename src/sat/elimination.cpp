#include "sat/elimination.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "sat/solver.h"

#define PREP_DBG (std::getenv("STEP_DEBUG_PREP") != nullptr)

namespace step::sat {

namespace {

/// Resolvent of `p` (contains v) and `n` (contains ¬v) on v, sorted and
/// deduplicated. Returns false for tautologies.
bool resolve(const Clause& p, const Clause& n, Var v, LitVec& out) {
  out.clear();
  for (Lit l : p.lits()) {
    if (var(l) != v) out.push_back(l);
  }
  for (Lit l : n.lits()) {
    if (var(l) != v) out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (var(out[i]) == var(out[i + 1])) return false;  // tautology
  }
  return true;
}

}  // namespace

void Eliminator::run(LitVec& pending_units) {
  STEP_CHECK(s_.decision_level() == 0);
  budget_ = s_.opts_.elim_budget;

  occs_.assign(s_.bin_watches_.size(), {});
  unit_pending_.assign(s_.num_vars(), 0);
  for (Lit l : pending_units) unit_pending_[var(l)] = 1;
  for (CRef cr : s_.clauses_) {
    const Clause& c = s_.arena_[cr];
    if (c.removed()) continue;
    for (Lit l : c.lits()) occs_[index(l)].push_back(cr);
  }

  // Cheapest variables first — they delete more than they add and keep
  // the occurrence lists small for the heavier candidates.
  std::vector<Var> candidates;
  for (Var v = 0; v < s_.num_vars(); ++v) {
    if (s_.frozen_[v] || s_.var_state_[v] != 0 ||
        s_.value(v) != Lbool::kUndef) {
      continue;
    }
    if (occs_[index(mk_lit(v))].empty() && occs_[index(~mk_lit(v))].empty()) {
      continue;  // unconstrained; nothing to resolve away
    }
    candidates.push_back(v);
  }
  std::sort(candidates.begin(), candidates.end(), [&](Var a, Var b) {
    const std::size_t oa =
        occs_[index(mk_lit(a))].size() + occs_[index(~mk_lit(a))].size();
    const std::size_t ob =
        occs_[index(mk_lit(b))].size() + occs_[index(~mk_lit(b))].size();
    return oa < ob;
  });

  for (Var v : candidates) {
    if (budget_ <= 0 || !s_.ok_) break;
    try_eliminate(v, pending_units);
  }
  if (any_eliminated_) drop_learnts_of_eliminated();
}

bool Eliminator::try_eliminate(Var v, LitVec& pending_units) {
  if (unit_pending_[v]) return false;
  const Lit pos = mk_lit(v);
  // Live occurrence snapshot (entries go stale as neighbours are
  // eliminated and their clauses removed).
  std::vector<CRef> ps, ns;
  auto gather = [&](Lit l, std::vector<CRef>& out) {
    for (CRef cr : occs_[index(l)]) {
      const Clause& c = s_.arena_[cr];
      if (c.removed()) continue;
      bool sat = false;
      for (Lit cl : c.lits()) sat = sat || s_.value(cl) == Lbool::kTrue;
      if (!sat) out.push_back(cr);
    }
  };
  gather(pos, ps);
  gather(~pos, ns);
  budget_ -= static_cast<std::int64_t>(ps.size() + ns.size());
  if (ps.empty() && ns.empty()) return false;
  if (ps.size() > static_cast<std::size_t>(s_.opts_.elim_occ_limit) &&
      ns.size() > static_cast<std::size_t>(s_.opts_.elim_occ_limit)) {
    return false;
  }

  // Clause-distribution bound: all non-tautological resolvents, abandoned
  // as soon as they outnumber the clauses they would replace.
  const std::size_t max_resolvents = ps.size() + ns.size() +
                                     static_cast<std::size_t>(
                                         std::max(0, s_.opts_.elim_grow));
  std::vector<LitVec> resolvents;
  LitVec r;
  for (CRef pc : ps) {
    for (CRef nc : ns) {
      budget_ -= static_cast<std::int64_t>(s_.arena_[pc].size() +
                                           s_.arena_[nc].size());
      if (!resolve(s_.arena_[pc], s_.arena_[nc], v, r)) continue;
      resolvents.push_back(r);
      if (resolvents.size() > max_resolvents) return false;
    }
  }

  // Commit. DRAT order matters: resolvents are RUP only while both parent
  // clauses are still present, so log every addition before any deletion.
  for (const LitVec& res : resolvents) {
    if (s_.opts_.drat_logging) s_.drat_.add(res);
  }
  if (PREP_DBG) {
    std::fprintf(stderr, "elim var %d: %zu pos, %zu neg, %zu resolvents\n", v,
                 ps.size(), ns.size(), resolvents.size());
    auto dump = [&](const char* tag, std::span<const Lit> c) {
      std::fprintf(stderr, "  %s:", tag);
      for (Lit l : c) {
        std::fprintf(stderr, " %s%d", sign(l) ? "-" : "", var(l) + 1);
      }
      std::fprintf(stderr, "\n");
    };
    for (CRef cr : ps) dump("pos", s_.arena_[cr].lits());
    for (CRef cr : ns) dump("neg", s_.arena_[cr].lits());
    for (const LitVec& res : resolvents) dump("res", res);
  }
  s_.reconstruction_.begin_elimination(v);
  for (CRef cr : ps) s_.reconstruction_.add_clause(s_.arena_[cr].lits());
  for (CRef cr : ns) s_.reconstruction_.add_clause(s_.arena_[cr].lits());
  for (const LitVec& res : resolvents) {
    STEP_CHECK(!res.empty());  // both parents ≥ 2 lits and share only v
    if (res.size() == 1) {
      pending_units.push_back(res[0]);
      unit_pending_[var(res[0])] = 1;
      continue;
    }
    const CRef cr = s_.arena_.alloc(res, /*learnt=*/false);
    s_.clauses_.push_back(cr);
    for (Lit l : res) occs_[index(l)].push_back(cr);
  }
  for (CRef cr : ps) s_.mark_removed(cr, /*learnt_list=*/false);
  for (CRef cr : ns) s_.mark_removed(cr, /*learnt_list=*/false);
  // Satisfied clauses containing v still have to go — v must end up with
  // zero live occurrences.
  auto drop_satisfied = [&](Lit l) {
    for (CRef cr : occs_[index(l)]) {
      if (!s_.arena_[cr].removed()) s_.mark_removed(cr, false);
    }
  };
  drop_satisfied(pos);
  drop_satisfied(~pos);

  s_.var_state_[v] = 1;
  ++s_.stats_.eliminated_vars;
  any_eliminated_ = true;
  return true;
}

/// Learnt clauses over an eliminated variable are deleted wholesale: they
/// are implied by the (pre-elimination) problem clauses, and keeping them
/// would re-introduce occurrences of a variable that must stay decision-
/// and propagation-free.
void Eliminator::drop_learnts_of_eliminated() {
  for (CRef cr : s_.learnts_) {
    Clause& c = s_.arena_[cr];
    if (c.removed()) continue;
    for (Lit l : c.lits()) {
      if (s_.var_state_[var(l)] == 1) {
        s_.mark_removed(cr, /*learnt_list=*/true);
        break;
      }
    }
  }
}

}  // namespace step::sat
