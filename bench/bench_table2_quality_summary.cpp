// Reproduces Table II: "Comparison of quality metrics between all models" —
// suite-wide aggregation of better% / equal% for
//   OR:  LJH vs STEP-{QD,QB,QDB}  and  STEP-MG vs STEP-{QD,QB,QDB}
//   AND: STEP-MG vs STEP-{QD,QB,QDB}
//   XOR: STEP-MG vs STEP-{QD,QB,QDB}
// (LJH appears for OR only: the paper's footnote 1 — Bi-dec does not
// implement AND/XOR.)

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace step;
  using core::Engine;
  using core::GateOp;
  using core::MetricKind;

  const auto scale = benchgen::scale_from_env();
  const auto suite = benchgen::standard_suite(scale);
  const auto budgets = bench::budgets_for(scale);
  bench::print_preamble("Table II: quality metrics between all models", scale);

  struct Challenger {
    Engine engine;
    MetricKind kind;
    const char* label;
  };
  const Challenger ch[3] = {
      {Engine::kQbfDisjoint, MetricKind::kDisjointness, "STEP-QD"},
      {Engine::kQbfBalanced, MetricKind::kBalancedness, "STEP-QB"},
      {Engine::kQbfCombined, MetricKind::kSum, "STEP-QDB"},
  };

  auto aggregate = [&](GateOp op, Engine base_engine, const char* base_label) {
    const auto base = bench::run_suite(suite, base_engine, op, budgets);
    for (const auto& c : ch) {
      const auto challenger = bench::run_suite(suite, c.engine, op, budgets);
      long better = 0, equal = 0, considered = 0;
      for (std::size_t i = 0; i < suite.size(); ++i) {
        const core::QualityComparison cmp =
            core::compare_quality(base[i], challenger[i], c.kind);
        better += cmp.challenger_better;
        equal += cmp.equal;
        considered += cmp.considered;
      }
      const double bp = considered ? 100.0 * better / considered : 0.0;
      const double ep = considered ? 100.0 * equal / considered : 0.0;
      std::printf("%-4s %-8s vs %-9s | %s better: %6.2f%%  equal: %6.2f%%"
                  "  (POs compared: %ld)\n",
                  core::to_string(op), base_label, c.label, c.label, bp, ep,
                  considered);
      std::fflush(stdout);
    }
  };

  aggregate(GateOp::kOr, Engine::kLjh, "LJH");
  aggregate(GateOp::kOr, Engine::kMg, "STEP-MG");
  aggregate(GateOp::kAnd, Engine::kMg, "STEP-MG");
  aggregate(GateOp::kXor, Engine::kMg, "STEP-MG");

  std::printf(
      "# shape check (paper): QB-better%% > QDB-better%% > QD-better%%"
      " against both baselines, for every op\n");
  return 0;
}
