#include "core/npn.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace step::core {

namespace {

inline void set_bit(TruthTable& tt, std::size_t row, bool v) {
  if (v) tt[row >> 6] |= 1ULL << (row & 63);
}

/// Row of the concrete input vector x that transform `t` pairs with row
/// `y_row` of the canonical input vector y: x_{perm[j]} = y_j XOR neg_j.
inline std::size_t x_row_of(std::size_t y_row, int n, const NpnTransform& t) {
  std::size_t x = 0;
  for (int j = 0; j < n; ++j) {
    const bool yj = ((y_row >> j) & 1U) != 0;
    const bool neg = ((t.input_neg >> j) & 1U) != 0;
    if (yj != neg) x |= std::size_t{1} << t.perm[j];
  }
  return x;
}

}  // namespace

NpnTransform npn_identity(int n) {
  NpnTransform t;
  t.perm.resize(n);
  std::iota(t.perm.begin(), t.perm.end(), std::uint8_t{0});
  return t;
}

TruthTable npn_apply(const TruthTable& c, int n, const NpnTransform& t) {
  STEP_CHECK(static_cast<int>(t.perm.size()) == n);
  const std::size_t rows = std::size_t{1} << n;
  TruthTable f(aig::tt_words(n), 0);
  for (std::size_t y = 0; y < rows; ++y) {
    set_bit(f, x_row_of(y, n, t), t.output_neg != aig::tt_bit(c, y));
  }
  return f;
}

NpnCanonical npn_canonicalize(const TruthTable& f, int n) {
  STEP_CHECK(n >= 0 && n <= kNpnMaxSupport);
  const std::size_t rows = std::size_t{1} << n;
  const std::uint64_t mask = rows >= 64 ? ~0ULL : (1ULL << rows) - 1;

  NpnCanonical best;
  NpnTransform t = npn_identity(n);
  const std::uint32_t neg_limit = 1U << n;
  std::vector<std::uint32_t> perm_row(rows);
  do {
    // Since x_{perm[j]} = y_j XOR neg_j, the concrete row is the pure
    // permutation image of (y XOR neg): one row map per perm covers all
    // 2^n input negations.
    for (std::size_t r = 0; r < rows; ++r) {
      std::uint32_t x = 0;
      for (int j = 0; j < n; ++j) {
        if ((r >> j) & 1U) x |= 1U << t.perm[j];
      }
      perm_row[r] = x;
    }
    for (t.input_neg = 0; t.input_neg < neg_limit; ++t.input_neg) {
      std::uint64_t word = 0;
      for (std::size_t y = 0; y < rows; ++y) {
        if (aig::tt_bit(f, perm_row[y ^ t.input_neg])) word |= 1ULL << y;
      }
      for (int o = 0; o <= 1; ++o) {
        t.output_neg = o != 0;
        const std::uint64_t cand = t.output_neg ? ~word & mask : word;
        if (best.tt.empty() || cand < best.tt[0]) {
          best.tt.assign(1, cand);
          best.transform = t;
        }
      }
    }
  } while (std::next_permutation(t.perm.begin(), t.perm.end()));
  return best;
}

bool npn_equivalent(const TruthTable& f, const TruthTable& g, int n) {
  STEP_CHECK(n >= 0 && n <= kNpnMaxSupport);
  NpnTransform t = npn_identity(n);
  const std::uint32_t neg_limit = 1U << n;
  do {
    for (t.input_neg = 0; t.input_neg < neg_limit; ++t.input_neg) {
      for (int o = 0; o <= 1; ++o) {
        t.output_neg = o != 0;
        if (npn_apply(g, n, t) == f) return true;
      }
    }
  } while (std::next_permutation(t.perm.begin(), t.perm.end()));
  return false;
}

NpnVarMap npn_compose(const NpnTransform& to_f, const NpnTransform& to_g) {
  const int n = static_cast<int>(to_f.perm.size());
  STEP_CHECK(static_cast<int>(to_g.perm.size()) == n);
  NpnVarMap m;
  m.var.resize(n);
  for (int j = 0; j < n; ++j) {
    m.var[to_f.perm[j]] = to_g.perm[j];
    const bool neg = (((to_f.input_neg >> j) & 1U) != 0) !=
                     (((to_g.input_neg >> j) & 1U) != 0);
    if (neg) m.neg |= 1U << to_f.perm[j];
  }
  m.output_neg = to_f.output_neg != to_g.output_neg;
  return m;
}

}  // namespace step::core
