// End-to-end pipelines across module boundaries: file formats -> network
// -> AIG -> decomposition -> extraction -> verification -> file formats.

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "benchgen/generators.h"
#include "core/circuit_driver.h"
#include "core/partition_check.h"
#include "core/synthesis.h"
#include "io/aiger.h"
#include "io/blif_reader.h"
#include "io/blif_writer.h"
#include "io/comb.h"
#include "io/pla_reader.h"
#include "test_util.h"

namespace step {
namespace {

TEST(Integration, BlifToDecomposedBlifRoundTrip) {
  // Generate -> BLIF text -> parse -> decompose every PO -> write the
  // extracted functions -> parse again -> exhaustive equivalence with the
  // recombination gate.
  const aig::Aig circ = benchgen::random_sop(3, 3, 2, 4, 4, 0xabcd);
  const io::Network net = io::parse_blif(io::write_blif(circ, "gen"));
  const aig::Aig back = net.to_aig();

  core::DecomposeOptions opts;
  opts.engine = core::Engine::kQbfCombined;
  const core::BiDecomposer dec(opts);

  int decomposed = 0;
  for (std::uint32_t po = 0; po < back.num_outputs(); ++po) {
    const core::Cone cone = core::extract_po_cone(back, po);
    if (cone.n() < 2) continue;
    const core::DecomposeResult r = dec.decompose(cone);
    if (r.status != core::DecomposeStatus::kDecomposed) continue;
    ++decomposed;
    ASSERT_TRUE(r.functions.has_value());

    const std::string text = io::write_blif(r.functions->aig, "dec");
    const aig::Aig reread = io::parse_blif(text).to_aig();
    // Output 2 of the extracted AIG is the recombination.
    EXPECT_TRUE(testutil::equivalent_by_simulation(
        cone.aig, cone.root, reread, reread.output(2), cone.n()));
  }
  EXPECT_GT(decomposed, 0);
}

TEST(Integration, PlaToProvenOptimalPartition) {
  // A PLA whose cubes split over {a0,a1,b0,b1} with c shared by design.
  const io::Network net = io::parse_pla(
      ".i 5\n.o 1\n.ilb a0 a1 b0 b1 c\n.ob f\n"
      "11--1 1\n--11- 1\n1---0 1\n.e\n");
  const aig::Aig circ = net.to_aig();
  const core::Cone cone = core::extract_po_cone(circ, 0);
  ASSERT_EQ(cone.n(), 5);

  core::DecomposeOptions opts;
  opts.engine = core::Engine::kQbfDisjoint;
  const core::DecomposeResult r = core::BiDecomposer(opts).decompose(cone);
  ASSERT_EQ(r.status, core::DecomposeStatus::kDecomposed);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_TRUE(r.verified);
  // Brute force agrees on the optimum shared-set size.
  const core::BruteForceResult oracle = core::brute_force_optimum(
      cone, core::GateOp::kOr, core::MetricKind::kDisjointness);
  ASSERT_TRUE(oracle.decomposable);
  EXPECT_EQ(r.metrics.shared, oracle.best_cost);
}

TEST(Integration, AigerThroughResynthesisAndBack) {
  const aig::Aig circ = benchgen::merge(
      {benchgen::parity_tree(6), benchgen::mux_tree(2)});
  const aig::Aig loaded = io::parse_aiger(io::write_aiger(circ));

  core::SynthesisOptions sopts;
  sopts.engine = core::Engine::kMg;
  const core::SynthesisResult synth = core::resynthesize(loaded, sopts);

  const aig::Aig final_circ = io::parse_aiger(io::write_aiger(synth.network));
  ASSERT_EQ(final_circ.num_outputs(), circ.num_outputs());
  std::vector<std::uint64_t> stim(circ.num_inputs());
  std::uint64_t x = 0x853c49e6748fea9bULL;
  for (auto& w : stim) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    w = x;
  }
  EXPECT_EQ(aig::simulate(circ, stim), aig::simulate(final_circ, stim));
}

TEST(Integration, SequentialBlifCombThenDecompose) {
  // A 3-bit counter as a sequential BLIF; comb-cut it and XOR-decompose
  // the next-state functions (classic s-series treatment).
  const char* blif =
      ".model cnt3\n.inputs en\n.outputs q0o\n"
      ".latch n0 q0 0\n.latch n1 q1 0\n.latch n2 q2 0\n"
      ".names en q0 n0\n01 1\n10 1\n"
      ".names en q0 c0\n11 1\n"
      ".names c0 q1 n1\n01 1\n10 1\n"
      ".names c0 q1 c1\n11 1\n"
      ".names c1 q2 n2\n01 1\n10 1\n"
      ".names q0 q0o\n1 1\n.end\n";
  const io::Network net = io::parse_blif(blif);
  ASSERT_FALSE(net.is_combinational());
  const aig::Aig circ = io::to_combinational(net);
  EXPECT_EQ(circ.num_inputs(), 4u);   // en + 3 state bits
  EXPECT_EQ(circ.num_outputs(), 4u);  // q0o + 3 next-state

  core::DecomposeOptions opts;
  opts.op = core::GateOp::kXor;
  opts.engine = core::Engine::kQbfBalanced;
  const core::CircuitRunResult run =
      core::run_circuit(circ, "cnt3", opts, 30.0);
  // Every next-state bit n_k = carry_{k-1} XOR q_k is XOR-decomposable.
  EXPECT_GE(run.num_decomposed(), 2);
  for (const core::PoOutcome& po : run.pos) {
    if (po.status == core::DecomposeStatus::kDecomposed) {
      EXPECT_TRUE(po.proven_optimal);
    }
  }
}

TEST(Integration, EmbeddedC17AgainstBruteForceAllOps) {
  const io::Network net = io::parse_blif(benchgen::embedded_c17_blif());
  const aig::Aig circ = net.to_aig();
  for (std::uint32_t po = 0; po < circ.num_outputs(); ++po) {
    const core::Cone cone = core::extract_po_cone(circ, po);
    for (core::GateOp op :
         {core::GateOp::kOr, core::GateOp::kAnd, core::GateOp::kXor}) {
      core::DecomposeOptions opts;
      opts.op = op;
      opts.engine = core::Engine::kQbfDisjoint;
      const core::DecomposeResult r = core::BiDecomposer(opts).decompose(cone);
      const core::BruteForceResult oracle = core::brute_force_optimum(
          cone, op, core::MetricKind::kDisjointness);
      ASSERT_EQ(r.status == core::DecomposeStatus::kDecomposed,
                oracle.decomposable)
          << "po " << po << " op " << to_string(op);
      if (oracle.decomposable) {
        EXPECT_EQ(r.metrics.shared, oracle.best_cost);
        EXPECT_TRUE(r.verified);
      }
    }
  }
}

TEST(Integration, AblationConfigurationsAgreeOnOptima) {
  // Symmetry breaking / pool seeding / clause fast path / incremental
  // solving are engineering, not semantics: all sixteen on/off
  // combinations find the same optimum.
  Rng rng(24680);
  for (int iter = 0; iter < 4; ++iter) {
    const core::Cone cone =
        testutil::random_cone(rng.next_int(3, 6), rng.next_int(6, 20), rng.next());
    const core::RelaxationMatrix m =
        core::build_relaxation_matrix(cone, core::GateOp::kOr);

    int reference_cost = -2;
    for (int mask = 0; mask < 16; ++mask) {
      core::QbfFinderOptions f;
      f.symmetry_breaking = (mask & 1) != 0;
      f.pool_seeding = (mask & 2) != 0;
      f.cegar.clause_fast_path = (mask & 4) != 0;
      f.incremental = (mask & 8) != 0;
      core::QbfPartitionFinder finder(m, f);
      core::OptimumSearch search(finder, core::QbfModel::kQD);
      const core::OptimumResult r = search.run(std::nullopt);
      const int cost =
          r.outcome == core::OptimumResult::Outcome::kFound ? r.best_cost : -1;
      if (reference_cost == -2) {
        reference_cost = cost;
      } else {
        EXPECT_EQ(cost, reference_cost) << "mask " << mask;
      }
    }
  }
}

}  // namespace
}  // namespace step
