// Robustness: the parsers must reject malformed input with exceptions —
// never crash, hang, or silently accept — under random mutation of valid
// files (a light structured fuzz, deterministic by seed) and on the
// committed corpus of malformed/truncated files under tests/data/corpus.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "benchgen/generators.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/circuit_driver.h"
#include "io/aiger.h"
#include "io/blif_reader.h"
#include "io/blif_writer.h"
#include "io/pla_reader.h"
#include "sat/dimacs.h"

namespace step {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(STEP_TEST_DATA_DIR) + "/corpus/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string mutate(const std::string& base, Rng& rng) {
  std::string s = base;
  const int edits = rng.next_int(1, 4);
  for (int e = 0; e < edits; ++e) {
    if (s.empty()) break;
    const std::size_t pos = rng.next_below(s.size());
    switch (rng.next_int(0, 3)) {
      case 0:  // flip a character
        s[pos] = static_cast<char>(' ' + rng.next_int(0, 94));
        break;
      case 1:  // delete a span
        s.erase(pos, rng.next_int(1, 8));
        break;
      case 2:  // duplicate a span
        s.insert(pos, s.substr(pos, rng.next_int(1, 8)));
        break;
      case 3:  // truncate
        s.resize(pos);
        break;
    }
  }
  return s;
}

template <typename ParseFn>
void fuzz(const std::string& valid, ParseFn parse, int rounds, int seed) {
  // The valid input must parse...
  EXPECT_NO_THROW(parse(valid));
  // ...and no mutation may do anything but succeed or throw runtime_error.
  Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    const std::string m = mutate(valid, rng);
    try {
      parse(m);
    } catch (const std::runtime_error&) {
      // expected failure mode
    }
  }
}

TEST(Robustness, BlifParserSurvivesMutation) {
  const std::string valid = io::write_blif(benchgen::ripple_adder(3), "m");
  fuzz(valid, [](const std::string& s) { return io::parse_blif(s); }, 400, 1);
}

TEST(Robustness, BlifElaborationSurvivesMutation) {
  const std::string valid = io::write_blif(benchgen::comparator(3), "m");
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::string m = mutate(valid, rng);
    try {
      io::parse_blif(m).to_aig();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, AigerParserSurvivesMutation) {
  const std::string valid = io::write_aiger(benchgen::parity_tree(5));
  fuzz(valid, [](const std::string& s) { return io::parse_aiger(s); }, 400, 3);
}

TEST(Robustness, PlaParserSurvivesMutation) {
  const std::string valid =
      ".i 4\n.o 2\n.ilb a b c d\n.ob f g\n"
      "1-0- 10\n-11- 11\n0001 01\n.e\n";
  fuzz(valid, [](const std::string& s) { return io::parse_pla(s); }, 400, 4);
}

TEST(Robustness, PlaElaborationSurvivesMutation) {
  const std::string valid = ".i 3\n.o 1\n110 1\n0-1 1\n.e\n";
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::string m = mutate(valid, rng);
    try {
      io::parse_pla(m).to_aig();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, DimacsParserSurvivesMutation) {
  const std::string valid = "p cnf 4 3\n1 -2 0\n2 3 -4 0\n-1 4 0\n";
  fuzz(valid, [](const std::string& s) { return sat::parse_dimacs(s); }, 400, 6);
}

// ---------------------------------------------------------------------------
// Committed corpus: every malformed file must raise std::runtime_error —
// not crash, not allocate absurdly, not silently parse. Each file pins a
// specific historical failure mode (oversized headers used to segfault or
// bad_alloc; deep AND chains overflowed the recursive elaborator).
// ---------------------------------------------------------------------------

TEST(RobustnessCorpus, MalformedBlifFilesAreRejected) {
  for (const char* name :
       {"truncated.blif", "truncated_mid_cube.blif", "bad_cube.blif",
        "cycle.blif", "undriven.blif", "stray_cube.blif", "empty.blif",
        "cube_width.blif"}) {
    const std::string text = slurp(corpus_path(name));
    EXPECT_THROW(io::parse_blif(text).to_aig(), std::runtime_error) << name;
  }
}

TEST(RobustnessCorpus, MalformedAigerFilesAreRejected) {
  for (const char* name :
       {"huge_header.aag", "truncated.aag", "truncated_mid_and.aag",
        "cyclic.aag", "odd_and_lhs.aag", "redefined_input.aag",
        "out_of_range.aag"}) {
    const std::string text = slurp(corpus_path(name));
    EXPECT_THROW(io::parse_aiger(text), std::runtime_error) << name;
  }
}

TEST(RobustnessCorpus, MalformedPlaFilesAreRejected) {
  for (const char* name :
       {"huge_width.pla", "huge_product.pla", "width_mismatch.pla",
        "bad_char.pla", "bad_type.pla", "missing_i.pla"}) {
    const std::string text = slurp(corpus_path(name));
    EXPECT_THROW(io::parse_pla(text).to_aig(), std::runtime_error) << name;
  }
}

TEST(RobustnessCorpus, EveryCorpusFileParsesOrThrowsRuntimeError) {
  // Catch-all over the whole directory so future corpus additions are
  // covered without registering them by name: any outcome but a clean
  // parse or a runtime_error (e.g. bad_alloc, segfault) fails.
  namespace fs = std::filesystem;
  int seen = 0;
  for (const fs::directory_entry& e :
       fs::directory_iterator(std::string(STEP_TEST_DATA_DIR) + "/corpus")) {
    const std::string path = e.path().string();
    const std::string ext = e.path().extension().string();
    const std::string text = slurp(path);
    ++seen;
    try {
      if (ext == ".blif") io::parse_blif(text).to_aig();
      if (ext == ".aag") io::parse_aiger(text);
      if (ext == ".aig") io::parse_aiger_binary(text);
      if (ext == ".pla") io::parse_pla(text).to_aig();
    } catch (const std::runtime_error&) {
      // the expected rejection path
    }
  }
  EXPECT_GE(seen, 21);
}

TEST(Robustness, DeepAigerChainDoesNotOverflowTheStack) {
  // 200k-AND linear chain: the demand-driven elaborator must be
  // iterative. Generated rather than committed (the file is ~4 MB).
  // Alternating ¬x keeps structural hashing from folding the chain away.
  const int n = 200000;
  std::ostringstream os;
  os << "aag " << (n + 2) << " 2 0 1 " << n << "\n2\n4\n" << (n + 2) * 2
     << "\n";
  for (int v = 3; v <= n + 2; ++v) {
    os << v * 2 << ' ' << (v - 1) * 2 << ' ' << (v % 2 != 0 ? 3 : 2) << '\n';
  }
  const aig::Aig a = io::parse_aiger(os.str());
  EXPECT_EQ(a.num_ands(), static_cast<std::uint32_t>(n));
}

TEST(Robustness, AigerHeaderCannotDriveHugeAllocations) {
  // M far beyond the file size must be rejected up front, whatever the
  // other counts say.
  EXPECT_THROW(io::parse_aiger("aag 4000000000 0 0 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(io::parse_aiger("aag 2000000 1000000 0 0 1000000\n2\n"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Fault-injection sweep (the other half of robustness): under randomly
// injected deadline/alloc/abort/verification faults the circuit driver must
// terminate, classify every lost PO with a typed reason, keep the outcome
// tally consistent with the PO count, and never flip a conclusion relative
// to the fault-free oracle run — injection may only *lose* answers.
// ---------------------------------------------------------------------------

TEST(RobustnessFaults, InjectionSweepNeverFlipsConclusions) {
  const aig::Aig circuit = benchgen::random_dag(6, 40, 4, 0x5eed11);
  core::DecomposeOptions opts;
  opts.engine = core::Engine::kMg;
  opts.po_budget_s = 60.0;

  const core::CircuitRunResult oracle =
      core::run_circuit(circuit, "sweep", opts, 600.0);
  ASSERT_FALSE(oracle.pos.empty());
  for (const core::PoOutcome& p : oracle.pos) {
    ASSERT_NE(p.status, core::DecomposeStatus::kUnknown)
        << "oracle run must conclude every PO (po " << p.po_index << ")";
  }

  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (double rate : {0.02, 0.25}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " rate=" + std::to_string(rate));
      FaultPlan plan;
      plan.seed = seed;
      plan.rate = rate;
      core::ParallelDriverOptions par;
      par.faults = &plan;
      const core::CircuitRunResult res =
          core::run_circuit(circuit, "sweep", opts, 600.0, par);
      ASSERT_EQ(res.pos.size(), oracle.pos.size());
      const core::OutcomeCounts counts = res.outcome_counts();
      EXPECT_EQ(counts.total(), res.pos.size());
      for (std::size_t i = 0; i < res.pos.size(); ++i) {
        const core::PoOutcome& p = res.pos[i];
        SCOPED_TRACE("po " + std::to_string(p.po_index));
        if (p.status == core::DecomposeStatus::kUnknown) {
          // Every lost PO carries a typed (non-ok) cause.
          EXPECT_NE(p.reason, core::OutcomeReason::kOk);
        } else {
          // A conclusion reached under injection must be the oracle's:
          // faults may stop a search or discard a result, never corrupt it.
          EXPECT_EQ(p.reason, core::OutcomeReason::kOk);
          EXPECT_EQ(p.status, oracle.pos[i].status);
        }
      }
    }
  }
}

TEST(RobustnessFaults, HighRateInjectionStillTerminatesResynth) {
  // Resynthesis must emit a complete, equivalent netlist no matter what is
  // injected: faulted sub-cones degrade to verbatim leaves, and a PO whose
  // verification is flipped reports kVerificationFailed without poisoning
  // the assembled network.
  const aig::Aig circuit = benchgen::comparator(3);
  core::SynthesisOptions opts;
  opts.engine = core::Engine::kMg;
  FaultPlan plan;
  plan.seed = 7;
  plan.rate = 0.5;
  plan.verify = false;  // keep the real SAT check authoritative here
  core::ParallelDriverOptions par;
  par.faults = &plan;
  const core::CircuitResynthResult r = core::run_circuit_resynth(
      circuit, "cmp", opts, 120.0, par, /*verify=*/true);
  ASSERT_EQ(r.pos.size(), circuit.num_outputs());
  EXPECT_TRUE(r.all_verified);
  EXPECT_EQ(r.outcome_counts().total(), r.pos.size());
  EXPECT_EQ(r.network.num_outputs(), circuit.num_outputs());
}

TEST(Robustness, WritersAlwaysReparse) {
  // Property: whatever circuit we generate, writer output re-parses.
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const aig::Aig a = benchgen::random_dag(rng.next_int(2, 8),
                                            rng.next_int(2, 40),
                                            rng.next_int(1, 6), rng.next());
    EXPECT_NO_THROW(io::parse_blif(io::write_blif(a)).to_aig());
    EXPECT_NO_THROW(io::parse_aiger(io::write_aiger(a)));
  }
}

}  // namespace
}  // namespace step
