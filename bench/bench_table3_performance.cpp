// Reproduces Table III: "Performance data for OR bi-decomposition" —
// #Dec (functions decomposed) and CPU seconds per circuit for
// LJH, STEP-MG and STEP-{QD,QB,QDB} — and A/Bs the incremental optimum
// search (persistent CEGAR solver pair, assumption-activated bounds)
// against the scratch rebuild-per-query path on the QBF engines.
//
// `--json <path>` additionally writes the whole run machine-readably
// (per-circuit per-engine wall/calls/iterations/conflicts plus the
// incremental-vs-scratch comparison); CI emits BENCH_table3.json.

#include <array>
#include <cstdio>
#include <utility>

#include "bench_common.h"

namespace {

using namespace step;
using core::Engine;

struct EngineCell {
  core::CircuitRunResult run;
};

}  // namespace

int main(int argc, char** argv) {
  const auto scale = benchgen::scale_from_env();
  const auto suite = benchgen::standard_suite(scale);
  const auto budgets = bench::budgets_for(scale);
  const auto par = bench::parallel_from_env_or_args(argc, argv);
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::print_preamble("Table III: performance data for OR bi-decomposition",
                        scale);
  std::printf("# threads per circuit: %d (-j N or STEP_BENCH_THREADS)\n",
              par.num_threads);

  const Engine engines[] = {Engine::kLjh, Engine::kMg, Engine::kQbfDisjoint,
                            Engine::kQbfBalanced, Engine::kQbfCombined};
  const Engine qbf_engines[] = {Engine::kQbfDisjoint, Engine::kQbfBalanced,
                                Engine::kQbfCombined};

  std::printf("%-10s %-10s %5s %5s |", "Circuit", "(standin)", "#In", "#InM");
  for (Engine e : engines) {
    std::printf(" %8s %9s |", core::to_string(e), "CPU(s)");
  }
  std::printf("\n");

  // cells[c][e]: full run result, kept for the JSON artifact.
  std::vector<std::vector<EngineCell>> cells(suite.size());
  double totals[5] = {};
  int dec_totals[5] = {};
  for (std::size_t c = 0; c < suite.size(); ++c) {
    const benchgen::BenchCircuit& circ = suite[c];
    std::printf("%-10s %-10s %5u", circ.name.c_str(), circ.standin_for.c_str(),
                circ.aig.num_inputs());
    bool first = true;
    for (int e = 0; e < 5; ++e) {
      core::CircuitRunResult r = core::run_circuit(
          circ.aig, circ.name,
          bench::engine_options(engines[e], core::GateOp::kOr, budgets),
          budgets.circuit_s, par);
      if (first) {
        std::printf(" %5d |", r.max_support());
        first = false;
      }
      std::printf(" %4d/%-3zu %9.2f |", r.num_decomposed(), r.pos.size(),
                  r.total_cpu_s);
      totals[e] += r.total_cpu_s;
      dec_totals[e] += r.num_decomposed();
      cells[c].push_back(EngineCell{std::move(r)});
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("%-33s", "TOTAL (#Dec / CPU s)");
  for (int e = 0; e < 5; ++e) std::printf(" %4d %11.2f |", dec_totals[e], totals[e]);
  std::printf("\n");
  std::printf(
      "# shape check (paper): #Dec(Q*) == #Dec(MG) >= #Dec(LJH);"
      " CPU: MG < QB < QD < QDB among STEP engines; LJH slowest on most\n"
      "# circuits (the paper, like us, has QDB overtake LJH on some rows,"
      " e.g. s38584.1)\n");

  // ---- incremental vs scratch A/B on the optimum-search hot path --------
  // Isolates exactly the part the two architectures implement differently:
  // matrices and MG bootstraps are prepared once outside the timer, then
  // each mode runs the full bound-search schedule over every decomposable-
  // candidate cone of the suite. Counters are deterministic; wall time is
  // the minimum of kRepeats runs.
  std::printf("\n# optimum-search architecture A/B (OR, whole suite,"
              " search loop only):\n");
  std::printf("%-10s %-12s %6s %9s %10s %11s %12s\n", "Engine", "mode",
              "found", "CPU(s)", "qbf_calls", "iterations", "conflicts");
  struct Workload {
    core::RelaxationMatrix matrix;
    std::optional<core::Partition> bootstrap;
  };
  std::vector<Workload> work;
  for (const benchgen::BenchCircuit& circ : suite) {
    for (std::uint32_t po = 0; po < circ.aig.num_outputs(); ++po) {
      const core::Cone cone = core::extract_po_cone(circ.aig, po);
      if (cone.n() < 2) continue;
      Workload w;
      w.matrix = core::build_relaxation_matrix(cone, core::GateOp::kOr);
      core::RelaxationSolver rs(w.matrix);
      core::MgDecomposer mg(rs);
      const core::PartitionSearchResult r = mg.find_partition();
      if (!r.found) continue;  // MG is exact on decomposability
      w.bootstrap = r.partition;
      work.push_back(std::move(w));
    }
  }
  std::printf("# workload: %zu decomposable OR cones, MG-bootstrapped\n",
              work.size());
  struct AbResult {
    int found = 0;
    long qbf_calls = 0;
    long iterations = 0;
    std::uint64_t abs_conflicts = 0;
    std::uint64_t ver_conflicts = 0;
    double wall_s = 0.0;
    /// Per-cone (outcome, best_cost, proven_optimal) answers; counters are
    /// deterministic across repeats, so the first pass's answers stand.
    std::vector<std::array<int, 3>> answers;
  };
  constexpr int kRepeats = 3;
  AbResult ab[3][2];      // [engine][0=incremental, 1=scratch]
  long answer_mismatches = 0;  // across all engines
  for (int e = 0; e < 3; ++e) {
    const core::QbfModel model = e == 0   ? core::QbfModel::kQD
                                 : e == 1 ? core::QbfModel::kQB
                                          : core::QbfModel::kQDB;
    for (int mode = 0; mode < 2; ++mode) {
      AbResult& res = ab[e][mode];
      for (int rep = 0; rep < kRepeats; ++rep) {
        AbResult pass;
        Timer t;
        for (const Workload& w : work) {
          core::QbfFinderOptions f;
          f.incremental = (mode == 0);
          core::OptimumOptions o;
          o.call_timeout_s = budgets.qbf_call_s;
          core::QbfPartitionFinder finder(w.matrix, f);
          core::OptimumSearch search(finder, model, o);
          const core::OptimumResult r = search.run(w.bootstrap);
          if (r.outcome == core::OptimumResult::Outcome::kFound) ++pass.found;
          pass.answers.push_back({static_cast<int>(r.outcome), r.best_cost,
                                  r.proven_optimal ? 1 : 0});
          pass.qbf_calls += finder.qbf_calls();
          pass.iterations += finder.total_iterations();
          pass.abs_conflicts += finder.abstraction_conflicts();
          pass.ver_conflicts += finder.verification_conflicts();
        }
        pass.wall_s = t.elapsed_s();
        if (rep == 0 || pass.wall_s < res.wall_s) res = std::move(pass);
      }
      std::printf("%-10s %-12s %6d %9.3f %10ld %11ld %12llu\n",
                  core::to_string(qbf_engines[e]),
                  mode == 0 ? "incremental" : "scratch", res.found, res.wall_s,
                  res.qbf_calls, res.iterations,
                  static_cast<unsigned long long>(res.abs_conflicts +
                                                  res.ver_conflicts));
      std::fflush(stdout);
    }
    // The real equivalence check: per cone, both architectures must report
    // the same outcome, optimum cost, and optimality proof.
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (ab[e][0].answers[i] != ab[e][1].answers[i]) ++answer_mismatches;
    }
  }
  std::printf(
      "# expectation: per engine, incremental <= scratch on CPU and on"
      " conflicts;\n# answer mismatches (outcome/best_cost/proven_optimal,"
      " must be 0): %ld\n",
      answer_mismatches);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    bench::JsonWriter j(f);
    j.begin_object();
    j.kv("bench", "table3_performance");
    j.kv("scale", bench::scale_name(scale));
    j.kv("threads", par.num_threads);
    j.kv("op", "or");
    j.key("circuits");
    j.begin_array();
    for (std::size_t c = 0; c < suite.size(); ++c) {
      j.begin_object();
      j.kv("name", suite[c].name);
      j.kv("standin_for", suite[c].standin_for);
      j.kv("inputs", static_cast<long long>(suite[c].aig.num_inputs()));
      j.kv("max_support", cells[c][0].run.max_support());
      j.key("engines");
      j.begin_array();
      for (int e = 0; e < 5; ++e) {
        j.begin_object();
        j.kv("engine", core::to_string(engines[e]));
        bench::json_run_stats(j, cells[c][e].run);
        j.end_object();
      }
      j.end_array();
      j.end_object();
    }
    j.end_array();
    j.key("totals");
    j.begin_array();
    for (int e = 0; e < 5; ++e) {
      j.begin_object();
      j.kv("engine", core::to_string(engines[e]));
      j.kv("decomposed", dec_totals[e]);
      j.kv("cpu_s", totals[e]);
      j.end_object();
    }
    j.end_array();
    j.key("incremental_vs_scratch");
    j.begin_object();
    j.kv("workload_cones", static_cast<long long>(work.size()));
    j.kv("repeats", kRepeats);
    j.kv("answer_mismatches", answer_mismatches);
    j.kv("measures", "optimum-search loop only (matrices + MG bootstrap"
                     " prepared outside the timer); wall = min over repeats");
    j.key("engines");
    j.begin_array();
    for (int e = 0; e < 3; ++e) {
      j.begin_object();
      j.kv("engine", core::to_string(qbf_engines[e]));
      for (int mode = 0; mode < 2; ++mode) {
        j.key(mode == 0 ? "incremental" : "scratch");
        j.begin_object();
        j.kv("found", ab[e][mode].found);
        j.kv("wall_s", ab[e][mode].wall_s);
        j.kv("qbf_calls", ab[e][mode].qbf_calls);
        j.kv("qbf_iterations", ab[e][mode].iterations);
        j.kv("abstraction_conflicts", ab[e][mode].abs_conflicts);
        j.kv("verification_conflicts", ab[e][mode].ver_conflicts);
        j.end_object();
      }
      j.end_object();
    }
    j.end_array();
    j.end_object();
    j.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}
