#include "qbf/qbf2.h"

#include <algorithm>

#include "aig/ops.h"
#include "aig/support.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"

namespace step::qbf {

namespace {

/// Tries to view `root` (in `a`) as a disjunction of input literals.
/// Succeeds for the cofactored matrices of the bi-decomposition models,
/// where each refinement is a single clause over the partition variables.
bool collect_or_of_inputs(const aig::Aig& a, aig::Lit root,
                          std::vector<aig::Lit>& leaves) {
  std::vector<aig::Lit> stack{root};
  while (!stack.empty()) {
    const aig::Lit l = stack.back();
    stack.pop_back();
    const std::uint32_t n = aig::node_of(l);
    if (a.is_input(n)) {
      leaves.push_back(l);
      continue;
    }
    if (a.is_and(n) && aig::is_complemented(l)) {
      stack.push_back(aig::lnot(a.fanin0(n)));
      stack.push_back(aig::lnot(a.fanin1(n)));
      continue;
    }
    return false;  // constant or un-complemented AND: not a plain clause
  }
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  return true;
}

}  // namespace

ExistsForallSolver::ExistsForallSolver(const aig::Aig& matrix, aig::Lit root,
                                       std::vector<std::uint32_t> outer_inputs,
                                       std::vector<std::uint32_t> inner_inputs,
                                       CegarOptions opts)
    : matrix_(matrix),
      root_(root),
      outer_inputs_(std::move(outer_inputs)),
      inner_inputs_(std::move(inner_inputs)),
      opts_(opts),
      abstraction_(opts.sat),
      verification_(opts.sat) {
  input_role_.assign(matrix_.num_inputs(), -1);
  for (std::uint32_t i : outer_inputs_) input_role_[i] = 0;
  for (std::uint32_t i : inner_inputs_) input_role_[i] = 1;

  // Every matrix input the cone reaches must be quantified.
  for (std::uint32_t i : aig::structural_support(matrix_, root_)) {
    STEP_CHECK(input_role_[i] != -1);
  }

  outer_vars_.reserve(outer_inputs_.size());
  for (std::size_t i = 0; i < outer_inputs_.size(); ++i) {
    outer_vars_.push_back(abstraction_.new_var());
    // Candidate models are read back from these vars and callers may
    // assume over them; keep them out of preprocessing's reach.
    abstraction_.set_frozen(outer_vars_.back());
  }

  // Verification solver: assert ¬matrix over fresh vars for all inputs in
  // the cone; candidates arrive later as assumptions on the outer vars.
  ver_input_vars_.assign(matrix_.num_inputs(), sat::kVarUndef);
  std::vector<sat::Lit> input_sat(matrix_.num_inputs(), sat::kLitUndef);
  for (std::uint32_t i : aig::structural_support(matrix_, root_)) {
    ver_input_vars_[i] = verification_.new_var();
    input_sat[i] = sat::mk_lit(ver_input_vars_[i]);
    // Outer-input vars carry the candidate assumptions on every
    // verification call; inner-input vars are read back as countermodels.
    verification_.set_frozen(ver_input_vars_[i]);
  }
  cnf::SolverSink sink(verification_);
  cnf::encode_cone_assert(matrix_, root_, input_sat, sink, /*value=*/false);
}

void ExistsForallSolver::refine(
    const std::vector<sat::Lbool>& inner_assignment) {
  STEP_CHECK(inner_assignment.size() == inner_inputs_.size());
  // Fast exit for an inner assignment already refined against: pool
  // seeding and persistent multi-query solving replay countermodels whose
  // refinement is already in the abstraction.
  if (!seen_inner_.insert(sat::lbool_key(inner_assignment)).second) return;
  // Cofactor the matrix on the inner countermodel: the result is a
  // constraint purely over the outer inputs.
  aig::Aig dst;
  std::vector<aig::Lit> free_map(matrix_.num_inputs(), aig::kLitInvalid);
  std::vector<sat::Var> dst_input_to_outer;  // dst input pos -> outer pos
  for (std::size_t i = 0; i < outer_inputs_.size(); ++i) {
    free_map[outer_inputs_[i]] = dst.add_input();
    dst_input_to_outer.push_back(static_cast<sat::Var>(i));
  }
  std::vector<int> assignment(matrix_.num_inputs(), -1);
  for (std::size_t j = 0; j < inner_inputs_.size(); ++j) {
    assignment[inner_inputs_[j]] =
        inner_assignment[j] == sat::Lbool::kTrue ? 1 : 0;
  }
  const aig::Lit cof = aig::cofactor(matrix_, root_, dst, assignment, free_map);

  if (cof == aig::kLitTrue) return;  // candidate space unconstrained
  if (cof == aig::kLitFalse) {
    // No outer assignment survives: the formula is false.
    abstraction_.add_clause(std::span<const sat::Lit>{});
    return;
  }

  // Fast path: the cofactor is a plain clause over outer inputs (always the
  // case for the relaxation matrices of Section IV).
  std::vector<aig::Lit> leaves;
  if (opts_.clause_fast_path && collect_or_of_inputs(dst, cof, leaves)) {
    sat::LitVec clause;
    bool tautology = false;
    for (aig::Lit l : leaves) {
      const int dst_idx = dst.input_index(aig::node_of(l));
      const sat::Var v = outer_vars_[dst_input_to_outer[dst_idx]];
      clause.push_back(sat::mk_lit(v, aig::is_complemented(l)));
    }
    std::sort(clause.begin(), clause.end());
    for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
      if (sat::var(clause[i]) == sat::var(clause[i + 1])) tautology = true;
    }
    if (!tautology) {
      // Distinct countermodels frequently cofactor to the same clause;
      // adding it again only bloats the abstraction's watch lists.
      std::string key;
      key.reserve(clause.size() * 4);
      for (const sat::Lit l : clause) {
        key.append(reinterpret_cast<const char*>(&l.x), sizeof(l.x));
      }
      if (seen_clauses_.insert(std::move(key)).second) {
        abstraction_.add_clause(clause);
      }
    }
    return;
  }

  // General path: Tseitin-encode the cofactored cone into the abstraction.
  std::vector<sat::Lit> input_sat(dst.num_inputs(), sat::kLitUndef);
  for (std::uint32_t i = 0; i < dst.num_inputs(); ++i) {
    input_sat[i] = sat::mk_lit(outer_vars_[dst_input_to_outer[i]]);
  }
  cnf::SolverSink sink(abstraction_);
  cnf::encode_cone_assert(dst, cof, input_sat, sink, /*value=*/true);
}

void ExistsForallSolver::seed_countermodel(
    const std::vector<sat::Lbool>& inner_assignment) {
  refine(inner_assignment);
}

Qbf2Result ExistsForallSolver::solve(const Deadline* deadline) {
  return solve(std::span<const sat::Lit>{}, deadline);
}

Qbf2Result ExistsForallSolver::solve(std::span<const sat::Lit> assumptions,
                                     const Deadline* deadline) {
  Qbf2Result res;
  for (;;) {
    if (deadline != nullptr && deadline->expired()) {
      res.status = Qbf2Status::kUnknown;
      res.stopped_by = deadline->trip();
      return res;
    }
    const sat::Result ra =
      abstraction_.solve_limited(assumptions, -1, deadline);
    if (ra == sat::Result::kUnknown) {
      res.status = Qbf2Status::kUnknown;
      if (deadline != nullptr) res.stopped_by = deadline->trip();
      return res;
    }
    if (ra == sat::Result::kUnsat) {
      res.status = Qbf2Status::kFalse;
      return res;
    }

    // Candidate: outer assignment proposed by the abstraction.
    std::vector<sat::Lbool> cand(outer_inputs_.size());
    sat::LitVec assumps;
    for (std::size_t i = 0; i < outer_inputs_.size(); ++i) {
      cand[i] = abstraction_.model_value(outer_vars_[i]);
      const sat::Var vv = ver_input_vars_[outer_inputs_[i]];
      if (vv != sat::kVarUndef && cand[i] != sat::Lbool::kUndef) {
        assumps.push_back(sat::mk_lit(vv, cand[i] == sat::Lbool::kFalse));
      }
    }

    const sat::Result rv = verification_.solve_limited(assumps, -1, deadline);
    if (rv == sat::Result::kUnknown) {
      res.status = Qbf2Status::kUnknown;
      if (deadline != nullptr) res.stopped_by = deadline->trip();
      return res;
    }
    if (rv == sat::Result::kUnsat) {
      res.status = Qbf2Status::kTrue;
      res.outer_model = std::move(cand);
      return res;
    }

    // Countermodel: inner assignment falsifying the matrix.
    std::vector<sat::Lbool> inner(inner_inputs_.size(), sat::Lbool::kFalse);
    for (std::size_t j = 0; j < inner_inputs_.size(); ++j) {
      const sat::Var vv = ver_input_vars_[inner_inputs_[j]];
      if (vv != sat::kVarUndef) inner[j] = verification_.model_value(vv);
    }
    countermodels_.push_back(inner);
    refine(inner);
    ++res.iterations;
  }
}

}  // namespace step::qbf
