#include "core/reduce.h"

#include "aig/ops.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "sat/solver.h"

namespace step::core {

bool depends_on(const Cone& cone, std::uint32_t i) {
  STEP_CHECK(i < cone.aig.num_inputs());
  // Build both cofactors in a scratch AIG over shared fresh inputs; if
  // strashing already identifies them, skip the SAT call.
  aig::Aig scratch;
  std::vector<aig::Lit> free_map(cone.aig.num_inputs(), aig::kLitInvalid);
  for (std::uint32_t j = 0; j < cone.aig.num_inputs(); ++j) {
    if (j != i) free_map[j] = scratch.add_input();
  }
  std::vector<int> assignment(cone.aig.num_inputs(), -1);
  assignment[i] = 0;
  const aig::Lit f0 = aig::cofactor(cone.aig, cone.root, scratch, assignment, free_map);
  assignment[i] = 1;
  const aig::Lit f1 = aig::cofactor(cone.aig, cone.root, scratch, assignment, free_map);
  if (f0 == f1) return false;
  if (f0 == aig::lnot(f1)) return true;  // differ everywhere

  sat::Solver solver;
  std::vector<sat::Lit> in_sat(scratch.num_inputs());
  for (auto& l : in_sat) l = sat::mk_lit(solver.new_var());
  cnf::SolverSink sink(solver);
  const sat::Lit l0 = cnf::encode_cone(scratch, f0, in_sat, sink);
  const sat::Lit l1 = cnf::encode_cone(scratch, f1, in_sat, sink);
  // Satisfiable difference <=> dependence.
  const sat::Lit d = sat::mk_lit(solver.new_var());
  sink.add_ternary(~d, l0, l1);
  sink.add_ternary(~d, ~l0, ~l1);
  solver.add_clause({d});
  return solver.solve() == sat::Result::kSat;
}

Cone reduce_cone(const Cone& cone, std::vector<std::uint32_t>* kept) {
  std::vector<std::uint32_t> keep;
  for (std::uint32_t i = 0; i < cone.aig.num_inputs(); ++i) {
    if (depends_on(cone, i)) keep.push_back(i);
  }
  if (kept != nullptr) *kept = keep;
  if (keep.size() == cone.aig.num_inputs()) return cone;  // already tight

  // Rebuild over the surviving inputs; dropped inputs are cofactored to 0
  // (any constant is correct — the function ignores them).
  Cone out;
  std::vector<aig::Lit> free_map(cone.aig.num_inputs(), aig::kLitInvalid);
  std::vector<int> assignment(cone.aig.num_inputs(), 0);
  for (std::uint32_t i : keep) {
    free_map[i] = out.aig.add_input(cone.aig.input_name(i));
    assignment[i] = -1;
  }
  out.root = aig::cofactor(cone.aig, cone.root, out.aig, assignment, free_map);
  return out;
}

}  // namespace step::core
