#pragma once

#include <string>
#include <vector>

#include "aig/aig.h"

namespace step::benchgen {

/// One benchmark circuit of the experiment suite, labelled with the paper
/// circuit whose role it plays in the reproduced tables (see DESIGN.md §4:
/// the original ISCAS/ITC/LGSYNTH files are not redistributable here, so a
/// deterministic generator suite with comparable PO/support structure
/// stands in).
struct BenchCircuit {
  std::string name;         ///< suite name, e.g. "xc880"
  std::string standin_for;  ///< paper row it reproduces, e.g. "C880"
  aig::Aig aig;
};

/// Suite size tiers. kTiny is for tests, kSmall is the bench default
/// (minutes on a laptop), kFull stresses the solvers with wider supports.
enum class SuiteScale { kTiny, kSmall, kFull };

std::vector<BenchCircuit> standard_suite(SuiteScale scale);

/// Reads STEP_BENCH_SCALE=tiny|small|full from the environment
/// (default kSmall) — the knob the bench binaries use.
SuiteScale scale_from_env();

}  // namespace step::benchgen
