#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchgen/suite.h"
#include "core/circuit_driver.h"

namespace step::bench {

/// Parses `-j <n>` from argv, falling back to STEP_BENCH_THREADS, then to
/// 1 (the sequential reference run). 0 means "all hardware threads".
/// Rejects missing or non-numeric values loudly: a silently mis-parsed
/// thread count would skew the published table numbers.
inline core::ParallelDriverOptions parallel_from_env_or_args(int argc,
                                                             char** argv) {
  auto parse_count = [](const char* what, const char* text) {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
      std::fprintf(stderr, "%s: expected a thread count >= 0, got \"%s\"\n",
                   what, text);
      std::exit(2);
    }
    return static_cast<int>(v);
  };
  core::ParallelDriverOptions par;
  if (const char* env = std::getenv("STEP_BENCH_THREADS")) {
    par.num_threads = parse_count("STEP_BENCH_THREADS", env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-j") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "-j: missing thread count\n");
        std::exit(2);
      }
      par.num_threads = parse_count("-j", argv[++i]);
    }
  }
  return par;
}

/// Budgets scaled to the suite size (the paper: 6000 s per circuit, 4 s per
/// QBF call on a 2.93 GHz Xeon; our suite is ~100x smaller).
struct BenchBudgets {
  double circuit_s = 20.0;
  double po_s = 2.0;
  double qbf_call_s = 0.25;
};

inline BenchBudgets budgets_for(benchgen::SuiteScale scale) {
  switch (scale) {
    case benchgen::SuiteScale::kTiny: return {5.0, 1.0, 0.25};
    case benchgen::SuiteScale::kSmall: return {20.0, 2.0, 0.25};
    case benchgen::SuiteScale::kFull: return {120.0, 6.0, 1.0};
  }
  return {};
}

inline core::DecomposeOptions engine_options(core::Engine engine,
                                             core::GateOp op,
                                             const BenchBudgets& b) {
  core::DecomposeOptions o;
  o.engine = engine;
  o.op = op;
  o.po_budget_s = b.po_s;
  o.optimum.call_timeout_s = b.qbf_call_s;
  // Benches time the partition search; extraction/verification are
  // exercised by the test suite and the examples.
  o.extract = false;
  o.verify = false;
  return o;
}

/// One engine across the whole suite.
inline std::vector<core::CircuitRunResult> run_suite(
    const std::vector<benchgen::BenchCircuit>& suite, core::Engine engine,
    core::GateOp op, const BenchBudgets& b,
    const core::ParallelDriverOptions& par = {}) {
  std::vector<core::CircuitRunResult> out;
  out.reserve(suite.size());
  for (const benchgen::BenchCircuit& c : suite) {
    out.push_back(core::run_circuit(
        c.aig, c.name, engine_options(engine, op, b), b.circuit_s, par));
  }
  return out;
}

inline const char* scale_name(benchgen::SuiteScale s) {
  switch (s) {
    case benchgen::SuiteScale::kTiny: return "tiny";
    case benchgen::SuiteScale::kSmall: return "small";
    case benchgen::SuiteScale::kFull: return "full";
  }
  return "?";
}

inline void print_preamble(const char* what, benchgen::SuiteScale scale) {
  std::printf("# %s\n", what);
  std::printf("# suite scale: %s (STEP_BENCH_SCALE=tiny|small|full)\n",
              scale_name(scale));
  std::printf(
      "# substitution note: generator suite stands in for ISCAS/ITC/LGSYNTH"
      " (DESIGN.md par.4)\n");
}

}  // namespace step::bench
