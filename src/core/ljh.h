#pragma once

#include <memory>

#include "common/timer.h"
#include "core/relaxation.h"

namespace step::core {

/// Reimplementation of the LJH bi-decomposition partition search
/// (Lee, Jiang, Hung, DAC'08 — the paper's baseline tool "Bi-dec",
/// best-quality mode `bi_dec <circuit> or 0 1`).
///
/// The algorithm seeds a partition with a variable pair (xj ∈ XA,
/// xl ∈ XB, rest in XC), checks validity with one SAT call (Proposition 1),
/// and greedily grows XA/XB by pulling variables out of the shared set
/// while validity is preserved. Several seeds are grown and the best
/// result by (disjointness, balancedness) is kept — heuristic, with no
/// optimality guarantee, which is exactly the gap the paper's QBF models
/// close.
struct LjhOptions {
  /// Seed pairs tested for validity (covers all pairs when n is small).
  int max_seed_attempts = 4096;
  /// Valid seeds that are fully grown (each growth costs up to 2(n−2) SAT
  /// calls). The default mirrors Bi-dec's best-quality mode (`or 0 1`),
  /// which explores many seeds — and pays for it in CPU time, visibly so
  /// in the paper's Table III.
  int max_grown_seeds = 24;
  /// Bi-dec re-encodes the validity formula for every check; that cost
  /// profile is what Table III and Figure 1 show for LJH. Set true for a
  /// modern incremental-assumptions mode instead (identical results,
  /// much faster).
  bool incremental_sat = false;
};

class LjhDecomposer {
 public:
  explicit LjhDecomposer(const RelaxationMatrix& m, LjhOptions opts = {},
                         sat::SolverOptions sat_opts = {})
      : m_(m), opts_(opts), sat_opts_(sat_opts) {}

  PartitionSearchResult find_partition(const Deadline* deadline = nullptr);

  int sat_calls() const { return sat_calls_; }

  /// Low-level SAT statistics over every solver this decomposer used
  /// (retired per-query solvers plus the live incremental one).
  sat::Solver::Stats solver_stats() const {
    sat::Solver::Stats s = retired_stats_;
    if (incremental_ != nullptr) s += incremental_->solver().stats();
    return s;
  }

 private:
  /// One validity check, honouring the encoding mode.
  bool check(const Partition& p, const Deadline* deadline, sat::Result* status);

  const RelaxationMatrix& m_;  ///< not owned; must outlive the decomposer
  LjhOptions opts_;
  sat::SolverOptions sat_opts_;
  std::unique_ptr<RelaxationSolver> incremental_;
  sat::Solver::Stats retired_stats_;  ///< from fresh-per-query solvers
  int sat_calls_ = 0;
};

}  // namespace step::core
