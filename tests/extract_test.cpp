#include "core/extract.h"

#include <gtest/gtest.h>

#include "aig/support.h"
#include "core/partition_check.h"
#include "test_util.h"

namespace step::core {
namespace {

Partition make_p(std::initializer_list<char> spec) {
  Partition p;
  for (char ch : spec) {
    p.cls.push_back(ch == 'A' ? VarClass::kA
                              : ch == 'B' ? VarClass::kB : VarClass::kC);
  }
  return p;
}

/// Support of the extracted functions must respect the partition:
/// fa touches only XA ∪ XC, fb only XB ∪ XC.
void expect_supports_respected(const ExtractedFunctions& fns,
                               const Partition& p) {
  for (std::uint32_t i : aig::structural_support(fns.aig, fns.fa)) {
    EXPECT_NE(p.cls[i], VarClass::kB) << "fa reads an XB variable";
  }
  for (std::uint32_t i : aig::structural_support(fns.aig, fns.fb)) {
    EXPECT_NE(p.cls[i], VarClass::kA) << "fb reads an XA variable";
  }
}

/// Exhaustive equivalence of f and the recombination.
void expect_recombines(const Cone& cone, const ExtractedFunctions& fns) {
  EXPECT_TRUE(testutil::equivalent_by_simulation(cone.aig, cone.root, fns.aig,
                                                 fns.combined, cone.n()));
}

TEST(Extract, OrOfTwoVariables) {
  Cone c;
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  c.root = c.aig.lor(x, y);
  const Partition p = make_p({'A', 'B'});
  const ExtractedFunctions fns = extract_functions(c, GateOp::kOr, p);
  expect_supports_respected(fns, p);
  expect_recombines(c, fns);
  EXPECT_TRUE(verify_decomposition(c, fns));
}

TEST(Extract, AndDuality) {
  Cone c;
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  const aig::Lit z = c.aig.add_input();
  c.root = c.aig.land(c.aig.land(x, y), z);
  const Partition p = make_p({'A', 'A', 'B'});
  ASSERT_TRUE(check_partition_exhaustive(c, GateOp::kAnd, p));
  const ExtractedFunctions fns = extract_functions(c, GateOp::kAnd, p);
  expect_supports_respected(fns, p);
  expect_recombines(c, fns);
  EXPECT_TRUE(verify_decomposition(c, fns));
}

TEST(Extract, XorByCofactoring) {
  Cone c;
  std::vector<aig::Lit> xs;
  for (int i = 0; i < 5; ++i) xs.push_back(c.aig.add_input());
  c.root = c.aig.lxor_many(xs);
  const Partition p = make_p({'A', 'A', 'B', 'B', 'B'});
  ASSERT_TRUE(check_partition_exhaustive(c, GateOp::kXor, p));
  const ExtractedFunctions fns = extract_functions(c, GateOp::kXor, p);
  expect_supports_respected(fns, p);
  expect_recombines(c, fns);
  EXPECT_TRUE(verify_decomposition(c, fns));
}

TEST(Extract, MuxWithSharedSelect) {
  Cone c;
  const aig::Lit s = c.aig.add_input();
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  c.root = c.aig.lmux(s, x, y);
  const Partition p = make_p({'C', 'A', 'B'});
  const ExtractedFunctions fns = extract_functions(c, GateOp::kOr, p);
  expect_supports_respected(fns, p);
  expect_recombines(c, fns);
  EXPECT_TRUE(verify_decomposition(c, fns));
}

struct OpSeed {
  GateOp op;
  int seed;
};

class ExtractRandom : public ::testing::TestWithParam<OpSeed> {};

TEST_P(ExtractRandom, RandomValidPartitionsRecombineExactly) {
  const auto [op, seed] = GetParam();
  Rng rng(seed * 40093 + 9);
  int checked = 0;
  for (int iter = 0; iter < 120 && checked < 15; ++iter) {
    const int n = rng.next_int(2, 7);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 28), rng.next());
    const Partition p = testutil::random_partition(n, rng);
    if (!p.non_trivial()) continue;
    if (!check_partition_exhaustive(cone, op, p)) continue;
    ++checked;

    const ExtractedFunctions fns = extract_functions(cone, op, p);
    expect_supports_respected(fns, p);
    expect_recombines(cone, fns);
    EXPECT_TRUE(verify_decomposition(cone, fns));
  }
  EXPECT_GT(checked, 4) << "random mix produced too few valid partitions";
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ExtractRandom,
    ::testing::Values(OpSeed{GateOp::kOr, 0}, OpSeed{GateOp::kOr, 1},
                      OpSeed{GateOp::kOr, 2}, OpSeed{GateOp::kAnd, 0},
                      OpSeed{GateOp::kAnd, 1}, OpSeed{GateOp::kAnd, 2},
                      OpSeed{GateOp::kXor, 0}, OpSeed{GateOp::kXor, 1},
                      OpSeed{GateOp::kXor, 2}));

TEST(Extract, VerifyRejectsWrongRecombination) {
  // verify_decomposition must actually catch mistakes: feed it a bogus
  // function pair.
  Cone c;
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  c.root = c.aig.lor(x, y);
  ExtractedFunctions bogus;
  const aig::Lit bx = bogus.aig.add_input();
  const aig::Lit by = bogus.aig.add_input();
  bogus.fa = bx;
  bogus.fb = by;
  bogus.combined = bogus.aig.land(bx, by);  // AND instead of OR
  EXPECT_FALSE(verify_decomposition(c, bogus));
}

}  // namespace
}  // namespace step::core
