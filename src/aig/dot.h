#pragma once

#include <string>

#include "aig/aig.h"

namespace step::aig {

/// Graphviz (dot) rendering of an AIG, for debugging and documentation:
/// inputs as boxes, AND gates as circles, complemented edges dashed,
/// outputs as double octagons.
std::string to_dot(const Aig& a, const std::string& graph_name = "aig");

}  // namespace step::aig
