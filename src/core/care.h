#pragma once

#include <optional>
#include <vector>

#include "aig/window.h"
#include "core/bidec_types.h"

namespace step::core {

/// Care set of an incompletely specified function: a Boolean function
/// hosted in its own AIG whose inputs mirror (positionally) the inputs of
/// the cone it accompanies. Minterms where `root` is false are don't-cares
/// — the decomposition may change the function there. The two sources are
/// circuit windows (satisfiability don't-cares of a structural cut, see
/// aig/window.h) and the recursion's sibling gates (observability
/// don't-cares: under f = fA OR fB, fA is unobservable wherever fB is 1).
///
/// APIs take `const CareSet*`; nullptr — or a constant-true root — means
/// the exact, completely specified semantics everywhere.
struct CareSet {
  aig::Aig aig;
  aig::Lit root = aig::kLitTrue;

  bool trivial() const { return root == aig::kLitTrue; }
};

inline bool care_is_trivial(const CareSet* care) {
  return care == nullptr || care->trivial();
}

/// The window's care function as a standalone CareSet (the window hosts
/// function and care in one AIG; decomposition wants them separable).
CareSet care_of_window(const aig::Window& win);

/// base ∧ cond (or base ∧ ¬cond), all over the same n input positions;
/// null/trivial base acts as constant true.
CareSet care_and_cone(const CareSet* base, const aig::Aig& cond_aig,
                      aig::Lit cond, bool negate_cond, int n);

/// Care set a child of one bi-decomposition step must honour: the parent's
/// care restricted by the sibling's observability don't-cares. Under
/// f = fA OR fB, fA is unobservable wherever fB is 1, so child 0 gets
/// care ∧ ¬fB; child 1 is rebuilt *after* child 0, so it must stay exact
/// wherever the rebuilt fA can be 0 — conservatively care ∧ (¬fA ∨ fB),
/// using only the original extraction (the rebuilt fA can differ from fA
/// only where fB is 1). AND is the dual; XOR has no gate-induced
/// don't-cares (both operands are always observable), so children inherit
/// the parent care unchanged. The sequential assignment keeps the two
/// children compatible — rebuilding both against the *original* sibling
/// can lose a minterm on both sides at once.
CareSet child_care(const CareSet* base, const aig::Aig& fns_aig, aig::Lit fa,
                   aig::Lit fb, GateOp op, int child, int n);

/// Existential projection onto the kept input positions: ∃dropped. care,
/// re-hosted over kept.size() inputs (position j reads old position
/// kept[j]). This is what makes a parent's care set reusable after the
/// child cone's support shrinks. Returns nullopt when more than
/// `max_quantified` inputs would be quantified or the intermediate AIG
/// explodes — callers then fall back to exact semantics, which is sound.
std::optional<CareSet> care_project(const CareSet& care,
                                    const std::vector<std::uint32_t>& kept,
                                    int max_quantified);

/// SAT check: is f constant on the care set? Returns the constant when so
/// (an empty care set reports constant false), nullopt otherwise.
std::optional<bool> constant_on_care(const Cone& cone, const CareSet& care);

/// SAT miter restricted to the care set: a ≡ b on every care minterm.
/// Inputs are identified positionally, as in cones_equivalent().
bool cones_equivalent_on_care(const Cone& a, const Cone& b,
                              const CareSet* care);

}  // namespace step::core
