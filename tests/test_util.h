#pragma once

#include "aig/simulate.h"
#include "common/rng.h"
#include "core/bidec_types.h"

namespace step::testutil {

/// Random single-output cone with exactly n inputs, all structurally used
/// or not — callers that need full support should retry or accept subsets.
inline core::Cone random_cone(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  core::Cone cone;
  std::vector<aig::Lit> pool;
  for (int i = 0; i < n; ++i) pool.push_back(cone.aig.add_input());
  for (int g = 0; g < gates; ++g) {
    const aig::Lit f0 =
        pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
    const aig::Lit f1 =
        pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
    pool.push_back(cone.aig.land(f0, f1));
  }
  cone.root = pool.back() ^ (rng.next_bool() ? 1u : 0u);
  return cone;
}

/// Random partition over n positions (may be trivial).
inline core::Partition random_partition(int n, Rng& rng) {
  core::Partition p;
  p.cls.resize(n);
  for (int i = 0; i < n; ++i) {
    p.cls[i] = static_cast<core::VarClass>(rng.next_int(0, 2));
  }
  return p;
}

/// Exhaustive check that two literals in (possibly different) AIGs with
/// the same number of inputs compute the same function (n <= 16).
inline bool equivalent_by_simulation(const aig::Aig& a1, aig::Lit r1,
                                     const aig::Aig& a2, aig::Lit r2, int n) {
  std::vector<std::uint32_t> support(n);
  for (int i = 0; i < n; ++i) support[i] = i;
  return aig::truth_table(a1, r1, support) == aig::truth_table(a2, r2, support);
}

}  // namespace step::testutil
