#include "io/blif_reader.h"

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "benchgen/generators.h"
#include "io/blif_writer.h"
#include "io/comb.h"

namespace step::io {
namespace {

TEST(BlifReader, ParsesEmbeddedC17) {
  const Network net = parse_blif(benchgen::embedded_c17_blif());
  EXPECT_EQ(net.name, "c17");
  EXPECT_EQ(net.inputs.size(), 5u);
  EXPECT_EQ(net.outputs.size(), 2u);
  EXPECT_EQ(net.nodes.size(), 6u);
  EXPECT_TRUE(net.is_combinational());
}

TEST(BlifReader, C17FunctionIsCorrect) {
  const Network net = parse_blif(benchgen::embedded_c17_blif());
  const aig::Aig a = net.to_aig();
  ASSERT_EQ(a.num_inputs(), 5u);
  ASSERT_EQ(a.num_outputs(), 2u);
  // Reference model: G22 = NAND(G10,G16), etc.
  for (int m = 0; m < 32; ++m) {
    const bool g1 = m & 1, g2 = m & 2, g3 = m & 4, g6 = m & 8, g7 = m & 16;
    const bool g10 = !(g1 && g3);
    const bool g11 = !(g3 && g6);
    const bool g16 = !(g2 && g11);
    const bool g19 = !(g11 && g7);
    const bool g22 = !(g10 && g16);
    const bool g23 = !(g16 && g19);
    std::vector<std::uint64_t> stim(5);
    for (int j = 0; j < 5; ++j) stim[j] = ((m >> j) & 1) ? ~0ULL : 0;
    const auto out = aig::simulate(a, stim);
    EXPECT_EQ((out[0] & 1) != 0, g22) << "m=" << m;
    EXPECT_EQ((out[1] & 1) != 0, g23) << "m=" << m;
  }
}

TEST(BlifReader, ConstantNodes) {
  const Network net = parse_blif(
      ".model consts\n.inputs a\n.outputs one zero buf\n"
      ".names one\n1\n"
      ".names zero\n"  // empty cover = constant 0
      ".names a buf\n1 1\n"
      ".end\n");
  const aig::Aig a = net.to_aig();
  const auto out = aig::simulate(a, {0xf0f0f0f0f0f0f0f0ULL});
  EXPECT_EQ(out[0], ~0ULL);
  EXPECT_EQ(out[1], 0ULL);
  EXPECT_EQ(out[2], 0xf0f0f0f0f0f0f0f0ULL);
}

TEST(BlifReader, OffsetCover) {
  // f = NOT(a OR b) expressed through the offset.
  const Network net = parse_blif(
      ".model off\n.inputs a b\n.outputs f\n"
      ".names a b f\n1- 0\n-1 0\n.end\n");
  const aig::Aig a = net.to_aig();
  const auto out = aig::simulate(a, {0b0101, 0b0011});
  EXPECT_EQ(out[0] & 0xf, 0b1000u);
}

TEST(BlifReader, LineContinuationAndComments) {
  const Network net = parse_blif(
      "# a comment\n.model m\n.inputs a \\\nb\n.outputs f\n"
      ".names a b f\n11 1\n.end\n");
  EXPECT_EQ(net.inputs.size(), 2u);
}

TEST(BlifReader, ErrorsOnUndrivenNet) {
  const Network net = parse_blif(".model bad\n.inputs a\n.outputs f\n.end\n");
  EXPECT_THROW(net.to_aig(), std::runtime_error);
}

TEST(BlifReader, ErrorsOnCycle) {
  const Network net = parse_blif(
      ".model cyc\n.inputs a\n.outputs f\n"
      ".names g a f\n11 1\n.names f g\n1 1\n.end\n");
  EXPECT_THROW(net.to_aig(), std::runtime_error);
}

TEST(BlifReader, ErrorsOnMalformedCube) {
  EXPECT_THROW(parse_blif(".model m\n.inputs a\n.outputs f\n"
                          ".names a f\n2 1\n.end\n"),
               std::runtime_error);
}

TEST(BlifComb, LatchesBecomeInputsAndOutputs) {
  const Network net = parse_blif(
      ".model seq\n.inputs en\n.outputs q0\n"
      ".latch n0 s0 0\n"
      ".names en s0 n0\n01 1\n10 1\n"  // n0 = en XOR s0
      ".names s0 q0\n1 1\n.end\n");
  EXPECT_FALSE(net.is_combinational());
  EXPECT_EQ(comb_num_inputs(net), 2u);
  EXPECT_EQ(comb_num_outputs(net), 2u);
  const aig::Aig a = to_combinational(net);
  ASSERT_EQ(a.num_inputs(), 2u);  // en + latch output s0
  ASSERT_EQ(a.num_outputs(), 2u);  // q0 + next-state n0
  const auto out = aig::simulate(a, {0b0101, 0b0011});
  EXPECT_EQ(out[0] & 0xf, 0b0011u);  // q0 follows s0
  EXPECT_EQ(out[1] & 0xf, 0b0110u);  // n0 = en ^ s0
}

TEST(BlifWriter, RoundTripPreservesFunction) {
  const std::vector<aig::Aig> circuits = {
      benchgen::ripple_adder(3), benchgen::comparator(3),
      benchgen::parity_tree(5), benchgen::priority_encoder(4)};
  for (const aig::Aig& a : circuits) {
    const std::string text = write_blif(a, "rt");
    const Network net = parse_blif(text);
    const aig::Aig b = net.to_aig();
    ASSERT_EQ(a.num_inputs(), b.num_inputs());
    ASSERT_EQ(a.num_outputs(), b.num_outputs());
    std::vector<std::uint64_t> stim(a.num_inputs());
    std::uint64_t x = 0x243f6a8885a308d3ULL;
    for (auto& w : stim) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      w = x;
    }
    EXPECT_EQ(aig::simulate(a, stim), aig::simulate(b, stim));
  }
}

TEST(BlifWriter, ConstantOutputs) {
  aig::Aig a;
  (void)a.add_input("x");
  a.add_output(aig::kLitTrue, "t");
  a.add_output(aig::kLitFalse, "f");
  const Network net = parse_blif(write_blif(a));
  const aig::Aig b = net.to_aig();
  const auto out = aig::simulate(b, {0xaaULL});
  EXPECT_EQ(out[0], ~0ULL);
  EXPECT_EQ(out[1], 0ULL);
}

TEST(BlifWriter, InverterOutput) {
  aig::Aig a;
  const aig::Lit x = a.add_input("x");
  a.add_output(aig::lnot(x), "nx");
  const aig::Aig b = parse_blif(write_blif(a)).to_aig();
  const auto out = aig::simulate(b, {0b01ULL});
  EXPECT_EQ(out[0] & 0b11, 0b10u);
}

}  // namespace
}  // namespace step::io
