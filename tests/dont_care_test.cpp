// Don't-care-aware decomposition tests: SDC window extraction (cut
// choice, simulation + SAT care completion, replacement verification),
// the care-aware validity check against the exhaustive oracle, the
// >=50-cones-per-engine equivalence harness (every DC decomposition must
// reproduce the cone on its care set), monotonicity (a care set never
// loses decompositions), and the driver-level DC-vs-exact A/B on the
// implied_majority showcase circuit.

#include <gtest/gtest.h>

#include "aig/ops.h"
#include "aig/window.h"
#include "benchgen/generators.h"
#include "core/circuit_driver.h"
#include "core/synthesis.h"
#include "test_util.h"

namespace step::core {
namespace {

/// Random non-empty care set over n inputs as an explicit truth table.
CareSet random_care(int n, Rng& rng, double keep_probability = 0.7) {
  const std::size_t rows = std::size_t{1} << n;
  std::vector<std::uint64_t> tt(aig::tt_words(n), 0);
  bool any = false;
  for (std::size_t r = 0; r < rows; ++r) {
    if (rng.next_double() < keep_probability) {
      tt[r >> 6] |= 1ULL << (r & 63);
      any = true;
    }
  }
  if (!any) tt[0] |= 1ULL;  // keep at least one care minterm
  CareSet care;
  std::vector<aig::Lit> inputs(n);
  for (int i = 0; i < n; ++i) inputs[i] = care.aig.add_input();
  care.root = aig::build_from_tt(care.aig, tt, inputs);
  return care;
}

// ---------- SDC windows ---------------------------------------------------

TEST(Window, ImpliedMajorityGetsAWindowWithExactCareSet) {
  const aig::Aig circ = benchgen::implied_majority(1);
  const std::optional<aig::Window> win =
      aig::compute_window(circ, circ.output(0), {});
  ASSERT_TRUE(win.has_value());
  EXPECT_TRUE(win->has_sdc());
  EXPECT_GE(win->n(), 2);
  EXPECT_LT(win->care_fraction(), 1.0);
  EXPECT_EQ(win->care_minterms + win->sdc_minterms,
            std::uint64_t{1} << win->n());

  // Cross-check the care set against the brute-force image of the cut:
  // enumerate every primary-input assignment, read the cut pattern, and
  // compare the reachable set with the window's care function.
  const int pis = static_cast<int>(circ.num_inputs());
  ASSERT_LE(pis, 12);
  std::vector<char> reachable(std::size_t{1} << win->n(), 0);
  for (std::size_t x = 0; x < (std::size_t{1} << pis); ++x) {
    std::vector<std::uint64_t> words(pis);
    for (int i = 0; i < pis; ++i) words[i] = ((x >> i) & 1U) ? ~0ULL : 0ULL;
    const std::vector<std::uint64_t> vals = aig::simulate_nodes(circ, words);
    std::size_t pattern = 0;
    for (int j = 0; j < win->n(); ++j) {
      pattern |= (vals[aig::node_of(win->cut[j])] & 1ULL) << j;
    }
    reachable[pattern] = 1;
  }
  std::vector<std::uint32_t> support(win->n());
  for (int j = 0; j < win->n(); ++j) support[j] = j;
  const TruthTable care_tt = aig::truth_table(win->aig, win->care, support);
  std::uint64_t care_count = 0;
  for (std::size_t p = 0; p < reachable.size(); ++p) {
    EXPECT_EQ(aig::tt_bit(care_tt, p), reachable[p] != 0) << "pattern " << p;
    care_count += reachable[p];
  }
  EXPECT_EQ(win->care_minterms, care_count);

  // The window function composed with the cut logic is the original PO.
  EXPECT_TRUE(aig::verify_window_replacement(circ, circ.output(0), *win,
                                             win->aig, win->root));
  // A replacement differing on a care pattern must be rejected.
  aig::Aig broken;
  std::vector<aig::Lit> binputs;
  for (int j = 0; j < win->n(); ++j) binputs.push_back(broken.add_input());
  const aig::Lit wrong =
      aig::lnot(aig::copy_cone(win->aig, win->root, broken, binputs));
  EXPECT_FALSE(aig::verify_window_replacement(circ, circ.output(0), *win,
                                              broken, wrong));
}

/// Conjunction chains over disjoint inputs: every cut is a set of ANDs of
/// pairwise-disjoint input groups, so all cut patterns are producible and
/// no don't-cares exist anywhere. (Parity trees, by contrast, DO have
/// SDCs: the AIG XOR implementation's internal pair (a∧¬b, ¬a∧b) can
/// never be 1 simultaneously.)
aig::Aig and_tree_circuit() {
  aig::Aig a;
  std::vector<aig::Lit> x;
  for (int i = 0; i < 8; ++i) x.push_back(a.add_input());
  a.add_output(a.land_many({x[0], x[1], x[2], x[3]}), "a0");
  a.add_output(a.land_many({x[4], x[5], x[6], x[7]}), "a1");
  a.add_output(a.land_many(x), "all");
  return a;
}

TEST(Window, FullyReachableCutsYieldNoWindow) {
  const aig::Aig circ = and_tree_circuit();
  for (std::uint32_t po = 0; po < circ.num_outputs(); ++po) {
    EXPECT_FALSE(aig::compute_window(circ, circ.output(po), {}).has_value())
        << "po " << po;
  }
}

TEST(Window, DeterministicAcrossCalls) {
  const aig::Aig circ = benchgen::implied_majority(2);
  const auto w1 = aig::compute_window(circ, circ.output(1), {});
  const auto w2 = aig::compute_window(circ, circ.output(1), {});
  ASSERT_EQ(w1.has_value(), w2.has_value());
  if (w1) {
    EXPECT_EQ(w1->cut, w2->cut);
    EXPECT_EQ(w1->care_minterms, w2->care_minterms);
    EXPECT_EQ(w1->depth, w2->depth);
  }
}

// ---------- care-aware validity vs the exhaustive oracle ------------------

TEST(DcPartitionCheck, SatAndExhaustiveOraclesAgreeUnderCare) {
  Rng rng(0xdc0517);
  const GateOp ops[] = {GateOp::kOr, GateOp::kAnd, GateOp::kXor};
  for (int iter = 0; iter < 120; ++iter) {
    const int n = rng.next_int(3, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 20), rng.next());
    const CareSet care = random_care(n, rng);
    const Partition p = testutil::random_partition(n, rng);
    const GateOp op = ops[iter % 3];
    EXPECT_EQ(check_partition(cone, op, p, &care),
              check_partition_exhaustive(cone, op, p, &care))
        << "iter " << iter << " op " << to_string(op) << " partition "
        << p.to_string();
  }
}

TEST(DcPartitionCheck, CareNeverInvalidatesAnExactlyValidPartition) {
  // Shrinking the care set only removes constraints: every exactly valid
  // partition stays valid under any care set (monotonicity).
  Rng rng(0x30100);
  for (int iter = 0; iter < 120; ++iter) {
    const int n = rng.next_int(3, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 20), rng.next());
    const Partition p = testutil::random_partition(n, rng);
    const GateOp op = iter % 2 == 0 ? GateOp::kOr : GateOp::kAnd;
    if (!check_partition_exhaustive(cone, op, p)) continue;
    const CareSet care = random_care(n, rng);
    EXPECT_TRUE(check_partition_exhaustive(cone, op, p, &care)) << iter;
    EXPECT_TRUE(check_partition(cone, op, p, &care)) << iter;
  }
}

// ---------- per-engine DC equivalence harness -----------------------------

class DcEngineEquivalence : public ::testing::TestWithParam<Engine> {};

TEST_P(DcEngineEquivalence, FiftyRandomConesStayEquivalentOnTheirCareSet) {
  const Engine engine = GetParam();
  Rng rng(0xdcec * (static_cast<int>(engine) + 3));
  int decomposed = 0;
  for (int iter = 0; iter < 50; ++iter) {
    const int n = rng.next_int(3, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 22), rng.next());
    const CareSet care = random_care(n, rng, 0.6);
    const GateOp op = iter % 2 == 0 ? GateOp::kOr : GateOp::kAnd;

    DecomposeOptions opts;
    opts.engine = engine;
    opts.op = op;
    opts.extract = true;
    opts.verify = true;
    const DecomposeResult exact = BiDecomposer(opts).decompose(cone);
    const DecomposeResult dc = BiDecomposer(opts).decompose(cone, &care);

    // Monotonicity: don't-cares only ever relax the validity condition.
    if (exact.status == DecomposeStatus::kDecomposed) {
      EXPECT_EQ(dc.status, DecomposeStatus::kDecomposed) << "iter " << iter;
    }
    if (dc.status != DecomposeStatus::kDecomposed) continue;
    ++decomposed;
    ASSERT_TRUE(dc.functions.has_value());
    // decompose() already SAT-verified on care (STEP_CHECK); re-assert
    // through the public miter plus the exhaustive validity oracle.
    EXPECT_TRUE(dc.verified);
    EXPECT_TRUE(cones_equivalent_on_care(
        cone, Cone{dc.functions->aig, dc.functions->combined}, &care))
        << "iter " << iter;
    EXPECT_TRUE(check_partition_exhaustive(cone, op, dc.partition, &care))
        << "iter " << iter;
  }
  EXPECT_GT(decomposed, 10) << "harness degenerated: almost nothing split";
}

INSTANTIATE_TEST_SUITE_P(Engines, DcEngineEquivalence,
                         ::testing::Values(Engine::kMg, Engine::kLjh,
                                           Engine::kQbfDisjoint,
                                           Engine::kQbfCombined));

TEST(DcEquivalence, TrivialCareMatchesExactBitForBit) {
  // DC-off and DC-with-trivial-care must take the identical code path and
  // produce identical partitions.
  Rng rng(0x7117);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = rng.next_int(3, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 20), rng.next());
    CareSet trivial;  // root = constant true
    DecomposeOptions opts;
    opts.engine = Engine::kMg;
    const DecomposeResult a = BiDecomposer(opts).decompose(cone);
    const DecomposeResult b = BiDecomposer(opts).decompose(cone, &trivial);
    EXPECT_EQ(a.status, b.status) << iter;
    EXPECT_EQ(a.partition.cls, b.partition.cls) << iter;
  }
}

// ---------- windowed trees + drivers --------------------------------------

TEST(DcSynthesis, WindowedTreeIsEquivalentOnTheCareSet) {
  const aig::Aig circ = benchgen::implied_majority(2);
  for (std::uint32_t po = 0; po < 2; ++po) {
    const auto win = aig::compute_window(circ, circ.output(po), {});
    ASSERT_TRUE(win.has_value()) << "po " << po;
    const CareSet care = care_of_window(*win);
    const Cone wcone{win->aig, win->root};

    SynthesisOptions opts;
    opts.engine = Engine::kMg;
    opts.pick_best_op = true;
    opts.use_dont_cares = true;
    auto tree = decompose_to_tree(wcone, opts, nullptr, nullptr, &care);
    EXPECT_TRUE(tree_equivalent(wcone, *tree, &care)) << "po " << po;

    // Replaying the tree gives a replacement that must splice soundly.
    aig::Aig repl;
    std::vector<aig::Lit> inputs;
    for (int i = 0; i < wcone.n(); ++i) inputs.push_back(repl.add_input());
    const aig::Lit root = emit_tree(*tree, repl, inputs);
    EXPECT_TRUE(aig::verify_window_replacement(circ, circ.output(po), *win,
                                               repl, root));
  }
}

TEST(DcDriver, DcModeDecomposesStrictlyMoreOnImpliedMajority) {
  const aig::Aig circ = benchgen::implied_majority(2);
  DecomposeOptions opts;
  opts.engine = Engine::kMg;
  opts.op = GateOp::kOr;
  opts.po_budget_s = 30.0;
  const CircuitRunResult exact = run_circuit(circ, "dcw", opts, 300.0, {1});

  opts.use_dont_cares = true;
  const CircuitRunResult dc = run_circuit(circ, "dcw", opts, 300.0, {1});

  // The MAJ POs are undecomposable as PI functions but split on their
  // window's care set: DC mode must decompose strictly more, with every
  // windowed result SAT-verified against the circuit before counting.
  EXPECT_GE(dc.num_decomposed(), exact.num_decomposed());
  EXPECT_GT(dc.num_decomposed(), exact.num_decomposed());
  EXPECT_GE(dc.num_window_decomposed(), 2);
  EXPECT_GT(dc.total_window_sdc_minterms(), 0u);

  // Parallel DC run reports the sequential outcomes.
  const CircuitRunResult par = run_circuit(circ, "dcw", opts, 300.0, {4});
  ASSERT_EQ(par.pos.size(), dc.pos.size());
  for (std::size_t i = 0; i < dc.pos.size(); ++i) {
    EXPECT_EQ(par.pos[i].status, dc.pos[i].status) << i;
    EXPECT_EQ(par.pos[i].used_window, dc.pos[i].used_window) << i;
  }
}

TEST(DcDriver, NoWindowsMeansDcModeMatchesExactExactly) {
  // A circuit with no don't-cares anywhere: DC mode must fall back to the
  // exact path on every PO and reproduce its outcomes bit for bit.
  const aig::Aig circ = and_tree_circuit();
  DecomposeOptions opts;
  opts.engine = Engine::kMg;
  opts.op = GateOp::kAnd;
  opts.po_budget_s = 30.0;
  const CircuitRunResult exact = run_circuit(circ, "par", opts, 300.0, {1});
  opts.use_dont_cares = true;
  const CircuitRunResult dc = run_circuit(circ, "par", opts, 300.0, {1});
  ASSERT_EQ(exact.pos.size(), dc.pos.size());
  for (std::size_t i = 0; i < exact.pos.size(); ++i) {
    EXPECT_EQ(exact.pos[i].status, dc.pos[i].status);
    EXPECT_EQ(exact.pos[i].metrics.shared, dc.pos[i].metrics.shared);
    EXPECT_FALSE(dc.pos[i].used_window);
  }
}

TEST(DcResynth, OdcRecursionKeepsWholeNetworkEquivalent) {
  // The resynthesized netlist must stay *exactly* equivalent even though
  // inner nodes were rebuilt under sibling-ODC care sets (the root care
  // is full, and the sequential child assignment keeps siblings
  // compatible).
  const aig::Aig circ = benchgen::merge(
      {benchgen::implied_majority(2), benchgen::ripple_adder(3),
       benchgen::random_sop(3, 3, 1, 4, 3, 0xdc)});
  SynthesisOptions opts;
  opts.engine = Engine::kMg;
  opts.pick_best_op = true;
  opts.use_dont_cares = true;
  const CircuitResynthResult r =
      run_circuit_resynth(circ, "dc", opts, 300.0, {2}, /*verify=*/true);
  EXPECT_TRUE(r.all_verified);
  for (const PoResynthOutcome& po : r.pos) {
    EXPECT_TRUE(po.verified) << "po " << po.po_index;
  }

  opts.use_dont_cares = false;
  const CircuitResynthResult exact =
      run_circuit_resynth(circ, "dc", opts, 300.0, {2}, /*verify=*/true);
  EXPECT_TRUE(exact.all_verified);
  // DC-off behaviour is the seed behaviour: identical netlists.
  ASSERT_EQ(exact.network.num_outputs(), circ.num_outputs());
}

}  // namespace
}  // namespace step::core
