#pragma once

#include <functional>
#include <vector>

#include "common/thread_pool.h"

namespace step {

/// Runs small groups of competing entries ("racers") concurrently and
/// waits for the whole group to return — the execution substrate of the
/// engine-portfolio races (core/portfolio.h).
///
/// Entry 0 always runs inline on the calling thread; the remaining
/// entries are submitted to a helper pool shared by every race of the
/// run. Racers therefore never run on the circuit driver's PO pool — a
/// racer queued behind blocked PO jobs on the same pool could deadlock
/// the PO worker that is waiting for it.
///
/// The scheduler is purely a completion barrier: it never kills a
/// running entry. Cancellation is the racers' own contract — each entry
/// polls a shared cancel flag (through its Deadline) and returns promptly
/// once the race is decided, so run_all() returns as soon as the losers
/// observe the winner. An entry that is still queued when its race is
/// decided runs anyway and trips on its first poll.
class RaceScheduler {
 public:
  /// Spawns `helper_threads` workers (at least 1) for non-primary racers.
  explicit RaceScheduler(int helper_threads)
      : pool_(helper_threads < 1 ? 1 : helper_threads) {}

  int helper_threads() const { return pool_.num_threads(); }

  /// Runs every entry to completion: entries[0] inline, the rest on the
  /// helper pool. Safe to call from multiple threads concurrently (races
  /// share the helpers; each call waits only for its own entries).
  void run_all(std::vector<std::function<void()>>& entries);

 private:
  ThreadPool pool_;
};

}  // namespace step
