#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "aig/aig.h"

namespace step {
class MemTracker;
}

namespace step::io {

/// AIGER reader/writer, ASCII ("aag") and binary ("aig") formats.
///
/// AIGER's literal encoding (2*var + complement, 0 = false) matches
/// step::aig's exactly, so the ASCII mapping is direct; the binary
/// format's ordering guarantees (AND left-hand sides strictly increasing,
/// fanins strictly below them) additionally permit a single-pass arena
/// build with node ids mapping 1:1 onto AIGER variables — no intermediate
/// representation, no elaboration map. Latches are cut combinationally on
/// read (latch output -> PI, next-state -> PO), consistent with the
/// paper's `comb` treatment; symbol-table names are honoured when present.
///
/// Every reader takes an optional MemTracker: header-derived and arena
/// allocations are charged against it *before* they happen, so a hostile
/// header or a genuinely huge input trips the configured soft cap with a
/// typed IoError ("memory limit exceeded") instead of driving the process
/// into the OOM killer.
aig::Aig parse_aiger(std::string_view text, MemTracker* mem = nullptr);

/// Binary-format parse of an in-memory buffer (delta-coded AND section).
/// Rejects non-monotone or 32-bit-overflowing literal deltas and
/// truncated streams with typed IoError.
aig::Aig parse_aiger_binary(std::string_view bytes, MemTracker* mem = nullptr);

/// Streaming parse of either format from an open stream (the file reader
/// uses this, so multi-hundred-megabyte netlists are never slurped into a
/// string first). `size_hint` is the total byte size when known (0 =
/// unknown) and bounds the header sanity checks.
aig::Aig parse_aiger_stream(std::istream& in, std::uint64_t size_hint = 0,
                            MemTracker* mem = nullptr);

/// Reads a file in either format, dispatching on the header magic
/// ("aag" vs "aig"), streaming the contents.
aig::Aig read_aiger_file(const std::string& path, MemTracker* mem = nullptr);

/// Writes a combinational AIG as ASCII AIGER with a full symbol table.
std::string write_aiger(const aig::Aig& a);

/// Writes a combinational AIG as binary AIGER (delta-coded AND section)
/// with a full symbol table. Inputs and ANDs are renumbered into the
/// format's required order; the result re-reads into an isomorphic AIG.
std::string write_aiger_binary(const aig::Aig& a);

/// Writes ASCII by default; a path ending in ".aig" selects the binary
/// format.
void write_aiger_file(const aig::Aig& a, const std::string& path);

}  // namespace step::io
