#include "sat/scc.h"

#include <algorithm>

#include "sat/solver.h"

namespace step::sat {

void EquivalenceReducer::run(LitVec& pending_units) {
  STEP_CHECK(s_.decision_level() == 0);
  const std::size_t n_lits = s_.bin_watches_.size();
  dfs_index_.assign(n_lits, -1);
  low_link_.assign(n_lits, -1);
  on_stack_.assign(n_lits, 0);
  sub_.assign(static_cast<std::size_t>(s_.num_vars()), kLitUndef);
  var_done_.assign(static_cast<std::size_t>(s_.num_vars()), 0);

  for (std::size_t i = 0; i < n_lits && s_.ok_; ++i) {
    if (dfs_index_[i] == -1) tarjan(Lit{static_cast<std::int32_t>(i)});
  }
  if (s_.ok_ && any_sub_) rewrite_clauses(pending_units);
}

/// Iterative Tarjan from `root` over the binary implication edges
/// p → other read straight from bin_watches_[index(p)].
void EquivalenceReducer::tarjan(Lit root) {
  struct Frame {
    Lit lit;
    std::size_t next_edge;
  };
  std::vector<Frame> stack{{root, 0}};
  dfs_index_[index(root)] = low_link_[index(root)] = next_index_++;
  scc_stack_.push_back(root);
  on_stack_[index(root)] = 1;

  while (!stack.empty() && s_.ok_) {
    Frame& f = stack.back();
    const auto& edges = s_.bin_watches_[index(f.lit)];
    if (f.next_edge < edges.size()) {
      const Lit succ = edges[f.next_edge++].other;
      if (dfs_index_[index(succ)] == -1) {
        dfs_index_[index(succ)] = low_link_[index(succ)] = next_index_++;
        scc_stack_.push_back(succ);
        on_stack_[index(succ)] = 1;
        stack.push_back({succ, 0});
      } else if (on_stack_[index(succ)]) {
        low_link_[index(f.lit)] =
            std::min(low_link_[index(f.lit)], dfs_index_[index(succ)]);
      }
      continue;
    }
    // All successors explored: close the frame.
    if (low_link_[index(f.lit)] == dfs_index_[index(f.lit)]) {
      LitVec members;
      Lit m;
      do {
        m = scc_stack_.back();
        scc_stack_.pop_back();
        on_stack_[index(m)] = 0;
        members.push_back(m);
      } while (m != f.lit);
      if (members.size() > 1) process_component(members);
    }
    const Lit done = f.lit;
    stack.pop_back();
    if (!stack.empty()) {
      low_link_[index(stack.back().lit)] = std::min(
          low_link_[index(stack.back().lit)], low_link_[index(done)]);
    }
  }
}

void EquivalenceReducer::process_component(const LitVec& members) {
  // x and ¬x equivalent: the formula is refuted. {x} is RUP (assuming ¬x
  // propagates back to x along the binary chain), and with it the empty
  // clause is.
  for (Lit l : members) {
    for (Lit o : members) {
      if (o == ~l) {
        if (s_.opts_.drat_logging) {
          s_.drat_.add(std::span<const Lit>(&l, 1));
          s_.drat_.add({});
        }
        s_.ok_ = false;
        return;
      }
    }
  }
  // The mirror component (all members negated) describes the same
  // equivalence class; process each variable set once.
  if (var_done_[var(members[0])]) return;
  for (Lit l : members) var_done_[var(l)] = 1;
  // Assigned components were fully propagated by the caller's settle —
  // substitution would be pointless churn.
  if (s_.value(members[0]) != Lbool::kUndef) return;

  Lit rep = members[0];
  for (Lit l : members) {
    if (s_.frozen_[var(l)]) {
      rep = l;
      break;
    }
  }
  for (Lit l : members) {
    const Var v = var(l);
    if (v == var(rep) || s_.frozen_[v] || s_.var_state_[v] != 0) continue;
    // Member literal l ≡ rep, so variable v ≡ (sign-adjusted) rep.
    const Lit target = sign(l) ? ~rep : rep;
    sub_[v] = target;
    s_.var_state_[v] = 2;
    s_.reconstruction_.push_substitution(v, target);
    any_sub_ = true;
  }
}

void EquivalenceReducer::rewrite_clauses(LitVec& pending_units) {
  // Two phases so the DRAT trace stays checkable: first log every
  // rewritten clause (RUP while the equivalence binaries are all still in
  // the database), then delete/mutate the originals — which include those
  // very binaries, collapsed to tautologies.
  struct Rewrite {
    CRef cr;
    bool learnt;
    bool taut;
    LitVec lits;
  };
  std::vector<Rewrite> rewrites;
  LitVec scratch;

  auto scan_list = [&](const std::vector<CRef>& list, bool learnt_list) {
    for (CRef cr : list) {
      Clause& c = s_.arena_[cr];
      if (c.removed()) continue;
      bool touched = false;
      for (Lit l : c.lits()) touched = touched || sub_[var(l)] != kLitUndef;
      if (!touched) continue;
      scratch.clear();
      for (Lit l : c.lits()) {
        const Lit t = sub_[var(l)];
        if (t == kLitUndef) {
          scratch.push_back(l);
        } else {
          scratch.push_back(sign(l) ? ~t : t);
          ++s_.stats_.substituted_lits;
        }
      }
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      bool taut = false;
      for (std::size_t i = 0; i + 1 < scratch.size(); ++i) {
        if (var(scratch[i]) == var(scratch[i + 1])) taut = true;
      }
      if (!taut && s_.opts_.drat_logging) s_.drat_.add(scratch);
      rewrites.push_back({cr, learnt_list, taut, scratch});
    }
  };
  scan_list(s_.clauses_, false);
  scan_list(s_.learnts_, true);

  for (Rewrite& rw : rewrites) {
    Clause& c = s_.arena_[rw.cr];
    if (rw.taut) {
      s_.mark_removed(rw.cr, rw.learnt);
      continue;
    }
    if (s_.opts_.drat_logging) s_.drat_.del(c.lits());
    if (rw.lits.size() == 1) {
      pending_units.push_back(rw.lits[0]);
      if (rw.learnt) s_.note_tier(c.tier(), -1);
      c.set_removed();
      continue;
    }
    for (std::size_t i = 0; i < rw.lits.size(); ++i) {
      c[static_cast<std::uint32_t>(i)] = rw.lits[i];
    }
    c.shrink(static_cast<std::uint32_t>(rw.lits.size()));
    if (c.lbd() > c.size()) c.set_lbd(c.size());
  }
}

}  // namespace step::sat
