#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace step::aig {

/// Edge literal into the AIG: 2*node + complement bit.
/// Node 0 is the constant-false node, so lit 0 = false and lit 1 = true.
using Lit = std::uint32_t;
constexpr Lit kLitFalse = 0;
constexpr Lit kLitTrue = 1;
constexpr Lit kLitInvalid = 0xffffffffU;

constexpr Lit mk_lit(std::uint32_t node, bool complemented = false) {
  return (node << 1) | static_cast<Lit>(complemented);
}
constexpr std::uint32_t node_of(Lit l) { return l >> 1; }
constexpr bool is_complemented(Lit l) { return (l & 1U) != 0; }
constexpr Lit lnot(Lit l) { return l ^ 1U; }
constexpr Lit lit_with_sign(Lit l, bool complemented) {
  return (l & ~1U) | static_cast<Lit>(complemented);
}

/// Structurally hashed And-Inverter Graph.
///
/// The in-memory circuit representation used everywhere in this library:
/// PO cones to decompose, QBF matrices, interpolants and the decomposed
/// sub-functions fA/fB are all AIGs. Construction goes through land()/lor()/
/// lxor()/lmux(), which constant-fold and structurally hash, so equivalent
/// sub-DAGs are shared. Node ids are dense and topologically ordered
/// (fanins precede fanouts), so consumers can sweep nodes with a single
/// forward loop instead of a DFS when visiting a whole AIG.
class Aig {
 public:
  Aig() {
    nodes_.push_back({kLitInvalid, kLitInvalid});  // node 0: constant false
    input_index_.push_back(-1);
  }

  // ----- construction -------------------------------------------------------
  /// Creates a primary input; returns its (positive) literal.
  Lit add_input(std::string name = "");

  /// Registers a primary output driven by `driver`; returns its index.
  std::uint32_t add_output(Lit driver, std::string name = "");

  /// AND with constant folding and structural hashing.
  Lit land(Lit a, Lit b);
  Lit lor(Lit a, Lit b) { return lnot(land(lnot(a), lnot(b))); }
  Lit lxor(Lit a, Lit b) {
    return lnot(land(lnot(land(a, lnot(b))), lnot(land(lnot(a), b))));
  }
  Lit lxnor(Lit a, Lit b) { return lnot(lxor(a, b)); }
  /// If-then-else: sel ? t : e.
  Lit lmux(Lit sel, Lit t, Lit e) {
    return lnot(land(lnot(land(sel, t)), lnot(land(lnot(sel), e))));
  }
  Lit land_many(const std::vector<Lit>& ls);
  Lit lor_many(const std::vector<Lit>& ls);
  Lit lxor_many(const std::vector<Lit>& ls);

  // ----- structure ----------------------------------------------------------
  std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(nodes_.size()); }
  std::uint32_t num_inputs() const { return static_cast<std::uint32_t>(inputs_.size()); }
  std::uint32_t num_outputs() const { return static_cast<std::uint32_t>(outputs_.size()); }
  /// Number of AND gates.
  std::uint32_t num_ands() const { return num_nodes() - num_inputs() - 1; }

  bool is_const(std::uint32_t node) const { return node == 0; }
  bool is_input(std::uint32_t node) const {
    return node != 0 && nodes_[node].f0 == kLitInvalid;
  }
  bool is_and(std::uint32_t node) const {
    return node != 0 && nodes_[node].f0 != kLitInvalid;
  }

  Lit fanin0(std::uint32_t node) const { return nodes_[node].f0; }
  Lit fanin1(std::uint32_t node) const { return nodes_[node].f1; }

  std::uint32_t input_node(std::uint32_t i) const { return inputs_[i]; }
  Lit input_lit(std::uint32_t i) const { return mk_lit(inputs_[i]); }
  /// Input position of `node`, or -1 if it is not an input.
  int input_index(std::uint32_t node) const { return input_index_[node]; }

  Lit output(std::uint32_t i) const { return outputs_[i]; }
  void set_output(std::uint32_t i, Lit driver) { outputs_[i] = driver; }

  const std::string& input_name(std::uint32_t i) const { return input_names_[i]; }
  const std::string& output_name(std::uint32_t i) const { return output_names_[i]; }
  void set_input_name(std::uint32_t i, std::string name) {
    input_names_[i] = std::move(name);
  }
  void set_output_name(std::uint32_t i, std::string name) {
    output_names_[i] = std::move(name);
  }

  /// Linear-time count of AND nodes in the cone of `root`.
  std::uint32_t cone_size(Lit root) const;

 private:
  struct Node {
    Lit f0, f1;
  };

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> inputs_;
  std::vector<Lit> outputs_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;
  std::vector<int> input_index_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
};

}  // namespace step::aig
