#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.h"

namespace step::sat {

/// Identifier of a proof node (leaf clause or derived resolvent).
using ProofId = std::uint32_t;
constexpr ProofId kProofIdUndef = 0xffffffffU;

/// One resolution step: resolve the running resolvent with `antecedent`
/// on variable `pivot`.
struct ProofStep {
  ProofId antecedent = kProofIdUndef;
  Var pivot = kVarUndef;
};

/// A node in the resolution proof DAG.
///
/// Leaves carry the clause literals as supplied by the user together with a
/// partition `tag` (the interpolation system uses tag 0 for the A-part and
/// tag 1 for the B-part). Derived nodes are trivial resolution chains:
/// start from node `start` and resolve with each step's antecedent in order.
struct ProofNode {
  // Leaf fields.
  int tag = -1;  ///< >= 0 for leaves; -1 for derived nodes.
  LitVec base_lits;

  // Derived fields.
  ProofId start = kProofIdUndef;
  std::vector<ProofStep> steps;

  bool is_leaf() const { return tag >= 0; }
};

/// Resolution proof trace recorded by the solver.
///
/// The trace is append-only; node ids are dense and topologically ordered
/// (every antecedent id is smaller than the derived node's id), which lets
/// consumers replay the proof with a single forward sweep.
class Proof {
 public:
  ProofId add_leaf(std::span<const Lit> lits, int tag) {
    ProofNode n;
    n.tag = tag;
    n.base_lits.assign(lits.begin(), lits.end());
    nodes_.push_back(std::move(n));
    return static_cast<ProofId>(nodes_.size() - 1);
  }

  ProofId add_derived(ProofId start, std::vector<ProofStep> steps) {
    ProofNode n;
    n.start = start;
    n.steps = std::move(steps);
    nodes_.push_back(std::move(n));
    return static_cast<ProofId>(nodes_.size() - 1);
  }

  const ProofNode& node(ProofId id) const { return nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Id of the derived empty clause; kProofIdUndef until the solver proves
  /// unsatisfiability without assumptions.
  ProofId empty_clause() const { return empty_clause_; }
  void set_empty_clause(ProofId id) { empty_clause_ = id; }

  /// Replays the resolution chain of `id` and returns the clause it derives.
  /// Used by tests to validate that logged chains are syntactically sound,
  /// and by the interpolation engine's debug mode.
  LitVec replay_clause(ProofId id) const;

 private:
  std::vector<ProofNode> nodes_;
  ProofId empty_clause_ = kProofIdUndef;
};

}  // namespace step::sat
