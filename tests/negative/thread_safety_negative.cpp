// Negative-compile probe: MUST NOT COMPILE under Clang with
// -Werror=thread-safety. cmake/thread_safety_check.cmake builds this file
// and asserts failure (CTest WILL_FAIL), proving the STEP_GUARDED_BY
// annotations on core::DecCache are enforced rather than decorative.
//
// DecCache befriends DecCacheTsaProbe exactly so this file can name a
// private guarded field; the friendship grants access, the thread-safety
// analysis still (correctly) rejects the lock-free read.

#include <cstddef>

#include "core/dec_cache.h"

namespace step::core {

struct DecCacheTsaProbe {
  static std::size_t unguarded_read(const DecCache& cache) {
    // Reading a STEP_GUARDED_BY(mu_) container without holding mu_:
    // clang must reject this line with -Werror=thread-safety.
    return cache.npn_map_.size();
  }
};

}  // namespace step::core

int main() {
  step::core::DecCache cache;
  return static_cast<int>(step::core::DecCacheTsaProbe::unguarded_read(cache));
}
